//! Shared staging for distributed runs: a [`GlobalProblem`] plus a
//! cache of its block partitions.
//!
//! Every rank of a simulated world builds its local blocks from the same
//! global matrices. Having each of `p` ranks re-partition the sparse
//! matrix would cost `O(p·nnz)` at staging time — negligible for tests,
//! prohibitive for 256-rank benchmark runs. A [`StagedProblem`] is
//! shared (via `Arc`) by all ranks of a world; the first rank to request
//! a given partition geometry computes it once and every other rank
//! reuses it. Staging happens in the `Setup` phase, so none of this
//! affects measured communication.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

use std::sync::Mutex;

use dsk_comm::RowSet;
use dsk_sparse::partition::partition_by_ranges;
use dsk_sparse::CooMatrix;

use crate::common::AlgorithmFamily;
use crate::global::GlobalProblem;

type Grid = Vec<Vec<CooMatrix>>;
type Key = (bool, Vec<usize>, Vec<usize>);
type PatternKey = (AlgorithmFamily, usize, usize);

/// The world-free half of a pattern-routed plan: per-rank need sets for
/// every routed ring of a `(family, p, c)` kernel grid, derived from
/// the global `S` structure exactly as each rank would derive its own
/// row locally.
///
/// `primary[rank][origin]` is the set of rows of the tile originating
/// at ring position `origin` that `rank` touches on its main routed
/// ring; `secondary` covers the second ring of families that route two
/// tile streams (2.5D sparse replication ships both dense panels).
/// Built once per plan by [`StagedProblem::plan_patterns`] and shared
/// by every worker the staging constructs; at build time each rank
/// still all-gathers its row over the real communicator (charged to
/// `Phase::PatternExchange`), so knowing the pattern is never free.
#[derive(Debug, Clone)]
pub struct PlanPatterns {
    /// Need sets for the family's primary routed ring, `[rank][origin]`.
    pub primary: Vec<Vec<RowSet>>,
    /// Need sets for the family's second routed ring, when it has one.
    pub secondary: Option<Vec<Vec<RowSet>>>,
}

/// A global problem plus memoized sparse-matrix partitions, shared by
/// all ranks of a simulated world.
pub struct StagedProblem {
    /// The underlying global problem.
    pub prob: Arc<GlobalProblem>,
    transpose: OnceLock<CooMatrix>,
    partitions: Mutex<HashMap<Key, Arc<Grid>>>,
    patterns: Mutex<HashMap<PatternKey, Arc<PlanPatterns>>>,
    tuning: dsk_kernels::LocalTuning,
}

impl StagedProblem {
    /// Stage a shared global problem.
    pub fn new(prob: Arc<GlobalProblem>) -> Self {
        StagedProblem {
            prob,
            transpose: OnceLock::new(),
            partitions: Mutex::new(HashMap::new()),
            patterns: Mutex::new(HashMap::new()),
            tuning: dsk_kernels::LocalTuning::new(),
        }
    }

    /// Stage a borrowed problem by cloning it (test convenience; no
    /// cross-rank sharing).
    pub fn ephemeral(prob: &GlobalProblem) -> Self {
        Self::new(Arc::new(prob.clone()))
    }

    /// `Sᵀ`, computed once.
    pub fn s_transposed(&self) -> &CooMatrix {
        self.transpose.get_or_init(|| self.prob.s.transpose())
    }

    /// The local-kernel tuning cache shared by every plan built from
    /// this staging (the local analogue of the partition and pattern
    /// caches): the first family to tune a given (op, shape class, r)
    /// measures once; every later build and every `plan_candidates`
    /// scoreboard row reuses the pick.
    pub fn local_tuning(&self) -> &dsk_kernels::LocalTuning {
        &self.tuning
    }

    /// The block partition of `S` (or `Sᵀ` when `transposed`) by the
    /// given row/column ranges, computed once per geometry and shared.
    pub fn partition(
        &self,
        transposed: bool,
        row_ranges: &[Range<usize>],
        col_ranges: &[Range<usize>],
    ) -> Arc<Grid> {
        let key: Key = (
            transposed,
            row_ranges.iter().map(|r| r.start).collect(),
            col_ranges.iter().map(|r| r.start).collect(),
        );
        if let Some(hit) = self.partitions.lock().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        // Compute outside the lock (other geometries stay unblocked);
        // a racing duplicate computation is harmless — last one wins.
        let src = if transposed {
            self.s_transposed()
        } else {
            &self.prob.s
        };
        let grid = Arc::new(partition_by_ranges(src, row_ranges, col_ranges));
        self.partitions
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&grid))
            .clone()
    }

    /// The pattern-routing need sets for a `(family, p, c)` plan,
    /// computed once by `derive` (each family's world-free derivation)
    /// and shared by every worker built from this staging.
    pub fn plan_patterns(
        &self,
        family: AlgorithmFamily,
        p: usize,
        c: usize,
        derive: impl FnOnce() -> PlanPatterns,
    ) -> Arc<PlanPatterns> {
        let key: PatternKey = (family, p, c);
        if let Some(hit) = self.patterns.lock().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        // Compute outside the lock, same idiom as `partition`.
        let pats = Arc::new(derive());
        self.patterns
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&pats))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::block_range;

    #[test]
    fn partition_is_cached_and_correct() {
        let prob = GlobalProblem::erdos_renyi(16, 16, 4, 3, 111);
        let staged = StagedProblem::ephemeral(&prob);
        let rows: Vec<_> = (0..4).map(|i| block_range(16, 4, i)).collect();
        let cols: Vec<_> = (0..2).map(|i| block_range(16, 2, i)).collect();
        let g1 = staged.partition(false, &rows, &cols);
        let g2 = staged.partition(false, &rows, &cols);
        assert!(Arc::ptr_eq(&g1, &g2), "second request must hit the cache");
        let total: usize = g1.iter().flatten().map(CooMatrix::nnz).sum();
        assert_eq!(total, prob.nnz());
    }

    #[test]
    fn transposed_partition_uses_transpose() {
        let prob = GlobalProblem::erdos_renyi(12, 20, 4, 3, 112);
        let staged = StagedProblem::ephemeral(&prob);
        let rows = std::slice::from_ref(&(0..20));
        let cols: Vec<_> = (0..3).map(|i| block_range(12, 3, i)).collect();
        let g = staged.partition(true, rows, &cols);
        let total: usize = g.iter().flatten().map(CooMatrix::nnz).sum();
        assert_eq!(total, prob.nnz());
        assert_eq!(g[0][0].nrows, 20);
    }

    #[test]
    fn distinct_geometries_get_distinct_entries() {
        let prob = GlobalProblem::erdos_renyi(16, 16, 4, 2, 113);
        let staged = StagedProblem::ephemeral(&prob);
        let r4: Vec<_> = (0..4).map(|i| block_range(16, 4, i)).collect();
        let r2: Vec<_> = (0..2).map(|i| block_range(16, 2, i)).collect();
        let g1 = staged.partition(false, &r4, &r2);
        let g2 = staged.partition(false, &r2, &r4);
        assert!(!Arc::ptr_eq(&g1, &g2));
        assert_eq!(g1.len(), 4);
        assert_eq!(g2.len(), 2);
    }
}
