//! The paper's communication theory: per-processor message and word
//! counts for every FusedMM algorithm (Table III), the optimal
//! replication factors (Table IV), and the best-algorithm predictor
//! behind Figure 6.
//!
//! Conventions follow the paper's analysis section: `m ≈ n`, dense
//! matrices hold `n·r` words, `φ = nnz(S)/(n·r)`, and a COO nonzero
//! costs three words in flight. "Words" means the maximum number of
//! words any processor sends while executing one FusedMM.

use crate::common::{AlgorithmFamily, Elision, ProblemDims, Routing};
use dsk_comm::MachineModel;

/// An algorithm choice: family plus elision strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Algorithm {
    /// The algorithm family (grid shape and what propagates).
    pub family: AlgorithmFamily,
    /// The FusedMM communication-eliding strategy.
    pub elision: Elision,
}

impl Algorithm {
    /// Construct, validating that the family admits the elision.
    pub fn new(family: AlgorithmFamily, elision: Elision) -> Self {
        assert!(
            family.supports(elision),
            "{family:?} does not support {elision:?}"
        );
        Algorithm { family, elision }
    }

    /// The eight algorithm variants benchmarked in the paper's Figure 4.
    pub fn all_benchmarked() -> Vec<Algorithm> {
        use AlgorithmFamily::*;
        use Elision::*;
        vec![
            Algorithm::new(DenseShift15, None),
            Algorithm::new(DenseShift15, ReplicationReuse),
            Algorithm::new(DenseShift15, LocalKernelFusion),
            Algorithm::new(SparseShift15, None),
            Algorithm::new(SparseShift15, ReplicationReuse),
            Algorithm::new(SparseRepl25, None),
            Algorithm::new(DenseRepl25, ReplicationReuse),
            Algorithm::new(DenseRepl25, None),
        ]
    }

    /// Figure-legend label, e.g. "1.5D Dense Shift, Local Kernel
    /// Fusion".
    pub fn label(&self) -> String {
        format!("{}, {}", self.family.label(), self.elision.label())
    }

    /// Whether this variant admits the given routing. Pattern routing
    /// requires the un-elided schedule: the elided variants fold two
    /// kernels' traffic into one round, so every receiver touches the
    /// full tiles and indexed-row routing degenerates to dense.
    pub fn admits(&self, routing: Routing) -> bool {
        routing == Routing::Dense || self.elision == Elision::None
    }
}

/// Words (8-byte units) the busiest processor communicates for one
/// FusedMM call (Table III, with the unoptimized back-to-back variants
/// from §V's analysis).
pub fn words_per_processor(
    alg: Algorithm,
    p: usize,
    c: usize,
    dims: ProblemDims,
    nnz: usize,
) -> f64 {
    let pf = p as f64;
    let cf = c as f64;
    let nr = dims.n as f64 * dims.r as f64;
    let nnzf = nnz as f64;
    use AlgorithmFamily::*;
    use Elision::*;
    match (alg.family, alg.elision) {
        (DenseShift15, None) => nr * (2.0 / cf + 2.0 * (cf - 1.0) / pf),
        (DenseShift15, ReplicationReuse) => nr * (2.0 / cf + (cf - 1.0) / pf),
        (DenseShift15, LocalKernelFusion) => nr * (1.0 / cf + 2.0 * (cf - 1.0) / pf),
        (SparseShift15, None) => 6.0 * nnzf / cf + 2.0 * nr * (cf - 1.0) / pf,
        (SparseShift15, ReplicationReuse) => 6.0 * nnzf / cf + nr * (cf - 1.0) / pf,
        (DenseRepl25, None) => {
            (6.0 * nnzf + 2.0 * nr) / (pf * cf).sqrt() + 2.0 * nr * (cf - 1.0) / pf
        }
        (DenseRepl25, ReplicationReuse) => {
            (6.0 * nnzf + 2.0 * nr) / (pf * cf).sqrt() + nr * (cf - 1.0) / pf
        }
        (SparseRepl25, None) => 4.0 * nr / (pf * cf).sqrt() + 3.0 * nnzf * (cf - 1.0) / pf,
        (f, e) => panic!("{f:?} does not support {e:?}"),
    }
}

/// Messages the busiest processor sends for one FusedMM call
/// (Table III).
pub fn messages_per_processor(alg: Algorithm, p: usize, c: usize) -> f64 {
    let pf = p as f64;
    let cf = c as f64;
    use AlgorithmFamily::*;
    use Elision::*;
    match (alg.family, alg.elision) {
        (DenseShift15, None) => 2.0 * pf / cf + 2.0 * (cf - 1.0),
        (DenseShift15, ReplicationReuse) => 2.0 * pf / cf + (cf - 1.0),
        (DenseShift15, LocalKernelFusion) => pf / cf + 2.0 * (cf - 1.0),
        (SparseShift15, None) => 2.0 * pf / cf + 2.0 * (cf - 1.0),
        (SparseShift15, ReplicationReuse) => 2.0 * pf / cf + (cf - 1.0),
        (DenseRepl25, None) => 4.0 * (pf / cf).sqrt() + 2.0 * (cf - 1.0),
        (DenseRepl25, ReplicationReuse) => 4.0 * (pf / cf).sqrt() + (cf - 1.0),
        (SparseRepl25, None) => 4.0 * (pf / cf).sqrt() + 3.0 * (cf - 1.0),
        (f, e) => panic!("{f:?} does not support {e:?}"),
    }
}

/// Expected fraction of an `nb`-row tile covered by the union of the
/// row supports of `k` independent sparse blocks of `z` nonzeros each.
///
/// This is the Erdős–Rényi occupancy estimate the planner uses as a
/// closed-form stand-in for the exact communication patterns the
/// runtime exchanges: one block leaves a row untouched with probability
/// `(1 − 1/nb)^z`, and `k` independent blocks with that probability to
/// the `k`-th power.
fn expected_union_frac(nb: f64, z: f64, k: f64) -> f64 {
    if nb <= 1.0 || k <= 0.0 {
        return if k > 0.0 && nb > 0.0 { 1.0 } else { 0.0 };
    }
    let miss = (1.0 - 1.0 / nb).powf(z.max(0.0));
    1.0 - miss.powf(k)
}

/// Words one rank ships per pattern-routed ring round: `q` hops of an
/// `nb × w` tile, hop `t` forwarding only the union of the need sets of
/// the `q − 1 − t` members still downstream. An indexed hop pays one
/// extra word per carried row and is capped at the dense tile (the
/// SparCML fallback), so a routed round never exceeds the dense round
/// it replaces.
fn routed_ring_round_words(nb: f64, w: f64, q: usize, z: f64) -> f64 {
    let dense_hop = nb * w;
    (0..q)
        .map(|k| (expected_union_frac(nb, z, k as f64) * nb * (w + 1.0)).min(dense_hop))
        .sum()
}

/// Words one rank contributes to the one-time need-set all-gather over
/// a ring of `q` members: its own `q` per-origin sets, one index word
/// per row, sent to each of the `q − 1` peers.
fn pattern_exchange_words(nb: f64, q: usize, z: f64) -> f64 {
    let per_origin = expected_union_frac(nb, z, 1.0) * nb;
    (q as f64 - 1.0) * q as f64 * per_origin
}

/// [`words_per_processor`] for the pattern-routed variant of `alg`:
/// the dense-tile propagation/replication terms shrink to the expected
/// routed volume (plus the pattern-exchange cost of learning the
/// routes), the sparse COO terms are untouched. `None` when the
/// variant does not admit routing (any elided schedule).
pub fn routed_words_per_processor(
    alg: Algorithm,
    p: usize,
    c: usize,
    dims: ProblemDims,
    nnz: usize,
) -> Option<f64> {
    if !alg.admits(Routing::Pattern) {
        return None;
    }
    let pf = p as f64;
    let cf = c as f64;
    let nr = dims.n as f64 * dims.r as f64;
    let nnzf = nnz as f64;
    let rf = dims.r as f64;
    use AlgorithmFamily::*;
    Some(match alg.family {
        DenseShift15 => {
            // Ring = the layer of q ranks; the traveling tile is an
            // n/p-row dense block, masked per member by one of its q
            // local S blocks (≈ nnz·c/p² nonzeros each).
            let q = p / c;
            let nb = dims.n as f64 / pf;
            let z = nnzf * cf / (pf * pf);
            let shift = 2.0 * routed_ring_round_words(nb, rf, q, z);
            let repl = 2.0 * nr * (cf - 1.0) / pf;
            shift + repl + pattern_exchange_words(nb, q, z)
        }
        SparseShift15 => {
            // The only dense traffic is the two fiber replications;
            // sparse_allgather ships each of the c−1 peers just the
            // rows its full-height S column block (nnz/p nonzeros,
            // ≈ nnz/(p·c) of them inside my m/c-row block) touches.
            let nb = dims.m as f64 / cf;
            let wz = nr / (pf * nb); // replicated slice width
            let z = nnzf / (pf * cf);
            let frac = expected_union_frac(nb, z, 1.0);
            let per_peer = (frac * nb * (wz + 1.0)).min(nb * wz);
            let repl = 2.0 * (cf - 1.0) * per_peer;
            6.0 * nnzf / cf + repl + pattern_exchange_words(nb, c, z)
        }
        DenseRepl25 => {
            // The dense panel circulates a col ring of q = √(p/c)
            // members, but each member's S block spans exactly one
            // panel's rows — a panel is live only until its single
            // consumer sees it, (q−1)/2 hops on average.
            let q = ((pf / cf).sqrt().round()) as usize;
            let qf = q as f64;
            let nb = dims.n as f64 / (qf * cf);
            let wz = rf / qf;
            let z = nnzf / pf;
            let frac = expected_union_frac(nb, z, 1.0);
            let hop = (frac * nb * (wz + 1.0)).min(nb * wz);
            let panel_rounds = 2.0 * (qf - 1.0) / 2.0 * hop;
            let sparse_travel = 6.0 * nnzf / (pf * cf).sqrt();
            let repl = 2.0 * nr * (cf - 1.0) / pf;
            sparse_travel + panel_rounds + repl + pattern_exchange_words(nb, q, z)
        }
        SparseRepl25 => {
            // Both dense panels travel as inputs through rings of
            // q = √(p/c) members whose stationary S blocks (pattern
            // fully replicated, ≈ nnz/q² nonzeros) mask them.
            let q = ((pf / cf).sqrt().round()) as usize;
            let qf = q as f64;
            let nb = dims.m as f64 / qf;
            let wz = rf / (qf * cf);
            let z = nnzf / (qf * qf);
            let panels = 4.0 * routed_ring_round_words(nb, wz, q, z);
            let fiber = 3.0 * nnzf * (cf - 1.0) / pf;
            panels + fiber + 2.0 * pattern_exchange_words(nb, q, z)
        }
    })
}

/// [`messages_per_processor`] for the pattern-routed variant: the
/// shift/collective schedules are unchanged (empty hops still move a
/// header), plus the one-time need-set all-gather per routed ring.
pub fn routed_messages_per_processor(alg: Algorithm, p: usize, c: usize) -> Option<f64> {
    if !alg.admits(Routing::Pattern) {
        return None;
    }
    let base = messages_per_processor(alg, p, c);
    use AlgorithmFamily::*;
    let extra = match alg.family {
        DenseShift15 => (p / c) as f64 - 1.0,
        SparseShift15 => c as f64 - 1.0,
        DenseRepl25 => ((p as f64 / c as f64).sqrt().round()) - 1.0,
        SparseRepl25 => 2.0 * (((p as f64 / c as f64).sqrt().round()) - 1.0),
    };
    Some(base + extra)
}

/// Words under an explicit routing choice; `None` when `alg` does not
/// admit it.
pub fn words_for_routing(
    alg: Algorithm,
    routing: Routing,
    p: usize,
    c: usize,
    dims: ProblemDims,
    nnz: usize,
) -> Option<f64> {
    match routing {
        Routing::Dense => Some(words_per_processor(alg, p, c, dims, nnz)),
        Routing::Pattern => routed_words_per_processor(alg, p, c, dims, nnz),
    }
}

/// Messages under an explicit routing choice; `None` when `alg` does
/// not admit it.
pub fn messages_for_routing(alg: Algorithm, routing: Routing, p: usize, c: usize) -> Option<f64> {
    match routing {
        Routing::Dense => Some(messages_per_processor(alg, p, c)),
        Routing::Pattern => routed_messages_per_processor(alg, p, c),
    }
}

/// The paper's Table IV: real-valued optimal replication factor
/// minimizing [`words_per_processor`].
pub fn optimal_c_formula(alg: Algorithm, p: usize, phi: f64) -> f64 {
    let pf = p as f64;
    use AlgorithmFamily::*;
    use Elision::*;
    match (alg.family, alg.elision) {
        (DenseShift15, None) => pf.sqrt(),
        (DenseShift15, ReplicationReuse) => (2.0 * pf).sqrt(),
        (DenseShift15, LocalKernelFusion) => (pf / 2.0).sqrt(),
        (SparseShift15, ReplicationReuse) => (6.0 * pf * phi).sqrt(),
        (SparseShift15, None) => (3.0 * pf * phi).sqrt(),
        (DenseRepl25, None) => (pf * (1.0 + 3.0 * phi).powi(2) / 4.0).cbrt(),
        (DenseRepl25, ReplicationReuse) => (pf * (1.0 + 3.0 * phi).powi(2)).cbrt(),
        (SparseRepl25, None) => pf.cbrt() * (2.0 / (3.0 * phi)).powf(2.0 / 3.0),
        (f, e) => panic!("{f:?} does not support {e:?}"),
    }
}

/// Replication factors admissible for `alg` at `p` ranks, bounded by
/// `c_max` (memory limit; the paper sweeps 1..16).
pub fn valid_replication_factors(alg: Algorithm, p: usize, c_max: usize) -> Vec<usize> {
    (1..=c_max.min(p))
        .filter(|&c| alg.family.valid_c(p, c))
        .collect()
}

/// The admissible replication factor minimizing the modeled word count.
pub fn optimal_c_search(
    alg: Algorithm,
    p: usize,
    dims: ProblemDims,
    nnz: usize,
    c_max: usize,
) -> Option<usize> {
    valid_replication_factors(alg, p, c_max)
        .into_iter()
        .min_by(|&a, &b| {
            let wa = words_per_processor(alg, p, a, dims, nnz);
            let wb = words_per_processor(alg, p, b, dims, nnz);
            wa.partial_cmp(&wb).unwrap()
        })
}

/// Modeled communication time of one FusedMM under the α-β model, at
/// the given replication factor.
pub fn predicted_comm_time(
    model: &MachineModel,
    alg: Algorithm,
    p: usize,
    c: usize,
    dims: ProblemDims,
    nnz: usize,
) -> f64 {
    model.alpha_s * messages_per_processor(alg, p, c)
        + model.beta_s_per_word * words_per_processor(alg, p, c, dims, nnz)
}

/// Modeled communication time under an explicit routing choice; `None`
/// when `alg` does not admit it.
pub fn predicted_comm_time_for(
    model: &MachineModel,
    alg: Algorithm,
    routing: Routing,
    p: usize,
    c: usize,
    dims: ProblemDims,
    nnz: usize,
) -> Option<f64> {
    let msgs = messages_for_routing(alg, routing, p, c)?;
    let words = words_for_routing(alg, routing, p, c, dims, nnz)?;
    Some(model.alpha_s * msgs + model.beta_s_per_word * words)
}

/// Modeled computation time of one FusedMM (2·2·nnz·r/p flops for the
/// two kernels, load-balanced).
pub fn predicted_comp_time(model: &MachineModel, p: usize, dims: ProblemDims, nnz: usize) -> f64 {
    let flops = 4.0 * nnz as f64 * dims.r as f64 / p as f64;
    model.gamma_s_per_flop * flops
}

/// The α-β model's overlap factor: predicted wall time of a pipelined
/// execution as a fraction of the serial (blocking) one, mirroring
/// `AggregateStats::modeled_total_overlapped_s` — under perfect
/// propagation/computation overlap the total drops from `comm + comp`
/// to `max(comm, comp)`, so the factor is
/// `max(comm, comp) / (comm + comp)`, in `(1/2, 1]`. The word/message
/// formulas themselves are unchanged: pipelining hides time, it never
/// changes what travels. `None` when `alg` does not admit `routing`;
/// `1.0` for a degenerate zero-cost point.
pub fn predicted_overlap_factor(
    model: &MachineModel,
    alg: Algorithm,
    routing: Routing,
    p: usize,
    c: usize,
    dims: ProblemDims,
    nnz: usize,
) -> Option<f64> {
    let comm = predicted_comm_time_for(model, alg, routing, p, c, dims, nnz)?;
    let comp = predicted_comp_time(model, p, dims, nnz);
    let total = comm + comp;
    if total <= 0.0 {
        return Some(1.0);
    }
    Some(comm.max(comp) / total)
}

/// Outcome of the best-algorithm prediction (Figure 6's "Predicted"
/// panel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The winning algorithm.
    pub algorithm: Algorithm,
    /// Its optimal admissible replication factor.
    pub c: usize,
    /// Dense-shift or pattern-routed propagation.
    pub routing: Routing,
    /// Its modeled communication time (seconds).
    pub time_s: f64,
}

/// Predict the fastest algorithm among `candidates` for a problem, each
/// at its own best admissible replication factor.
pub fn predict_best(
    model: &MachineModel,
    candidates: &[Algorithm],
    p: usize,
    dims: ProblemDims,
    nnz: usize,
    c_max: usize,
) -> Prediction {
    let mut best: Option<Prediction> = None;
    for &alg in candidates {
        let Some(c) = optimal_c_search(alg, p, dims, nnz, c_max) else {
            continue;
        };
        for routing in Routing::ALL {
            let Some(time_s) = predicted_comm_time_for(model, alg, routing, p, c, dims, nnz) else {
                continue;
            };
            if best.is_none_or(|b| time_s < b.time_s) {
                best = Some(Prediction {
                    algorithm: alg,
                    c,
                    routing,
                    time_s,
                });
            }
        }
    }
    best.expect("no admissible algorithm")
}

#[cfg(test)]
mod tests {
    use super::*;
    use AlgorithmFamily::*;
    use Elision::*;

    fn dims(n: usize, r: usize) -> ProblemDims {
        ProblemDims::new(n, n, r)
    }

    #[test]
    fn overlap_factor_is_bounded_and_degenerates_correctly() {
        let d = dims(1 << 12, 64);
        let nnz = d.n * 8;
        let alg = Algorithm::new(DenseShift15, None);
        let model = dsk_comm::MachineModel::cori_knl();
        let f = predicted_overlap_factor(&model, alg, Routing::Dense, 64, 4, d, nnz).unwrap();
        assert!(f > 0.5 && f <= 1.0, "overlap factor out of range: {f}");
        // γ = 0 ⇒ nothing to hide behind ⇒ factor exactly 1.
        let bw = dsk_comm::MachineModel::bandwidth_only();
        let g = predicted_overlap_factor(&bw, alg, Routing::Dense, 64, 4, d, nnz).unwrap();
        assert_eq!(g, 1.0);
    }

    #[test]
    fn closed_form_optima_match_numeric_argmin() {
        // Over a real-valued grid, the Table IV formula must sit at the
        // minimum of the Table III word count.
        let d = dims(1 << 20, 128);
        for alg in Algorithm::all_benchmarked() {
            for p in [64usize, 256, 1024] {
                for nnz_per_row in [4usize, 32, 256] {
                    let nnz = d.n * nnz_per_row;
                    let phi = d.phi(nnz);
                    let c_star = optimal_c_formula(alg, p, phi);
                    if !(1.0..=p as f64).contains(&c_star) {
                        continue; // outside the admissible range
                    }
                    let w_star =
                        words_per_processor(alg, p, c_star.round().max(1.0) as usize, d, nnz);
                    // Evaluate the continuous function at ±25%:
                    let wf = |c: f64| {
                        let alg_w = |cv: usize| words_per_processor(alg, p, cv, d, nnz);
                        // linear interpolation on integers brackets the
                        // continuous value well enough for this check
                        let lo = c.floor().max(1.0) as usize;
                        let hi = c.ceil() as usize;
                        (alg_w(lo) + alg_w(hi)) / 2.0
                    };
                    assert!(
                        w_star <= wf(c_star * 1.5) * 1.05
                            && w_star <= wf((c_star / 1.5).max(1.0)) * 1.05,
                        "formula optimum not near argmin: {alg:?} p={p} φ={phi} c*={c_star}"
                    );
                }
            }
        }
    }

    #[test]
    fn reuse_beats_none_at_respective_optima() {
        // The headline claim: at p → ∞ the ratio tends to 1/√2 ≈ 0.71,
        // i.e. ≈30% savings for 1.5D dense shifting.
        let d = dims(1 << 22, 256);
        let nnz = d.n * 32;
        let p = 65536;
        let w = |alg: Algorithm| {
            let c = optimal_c_formula(alg, p, d.phi(nnz)).round() as usize;
            words_per_processor(alg, p, c.max(1), d, nnz)
        };
        let none = w(Algorithm::new(DenseShift15, None));
        let reuse = w(Algorithm::new(DenseShift15, ReplicationReuse));
        let lkf = w(Algorithm::new(DenseShift15, LocalKernelFusion));
        let ratio_reuse = reuse / none;
        let ratio_lkf = lkf / none;
        assert!(
            (ratio_reuse - 1.0 / 2.0f64.sqrt()).abs() < 0.02,
            "reuse ratio {ratio_reuse}"
        );
        assert!(
            (ratio_lkf - 1.0 / 2.0f64.sqrt()).abs() < 0.02,
            "lkf ratio {ratio_lkf}"
        );
    }

    #[test]
    fn phi_governs_sparse_vs_dense_shift() {
        // Low φ → sparse shifting wins; high φ → dense shifting wins
        // (the paper's Figure 6 diagonal).
        let model = MachineModel::bandwidth_only();
        let p = 32;
        let candidates = [
            Algorithm::new(DenseShift15, LocalKernelFusion),
            Algorithm::new(SparseShift15, ReplicationReuse),
        ];
        // φ = 4/256 ≪ 1: sparse shift should win.
        let d1 = dims(1 << 18, 256);
        let low = predict_best(&model, &candidates, p, d1, d1.n * 4, 16);
        assert_eq!(low.algorithm.family, SparseShift15);
        // φ = 256/64 = 4 ≫ 1: dense shift should win.
        let d2 = dims(1 << 18, 64);
        let high = predict_best(&model, &candidates, p, d2, d2.n * 256, 16);
        assert_eq!(high.algorithm.family, DenseShift15);
    }

    #[test]
    fn optimal_c_ordering_matches_figure7() {
        // c*(reuse) ≥ c*(none) ≥ c*(lkf) for 1.5D dense shifting.
        for p in [16usize, 64, 256] {
            let reuse = optimal_c_formula(Algorithm::new(DenseShift15, ReplicationReuse), p, 0.1);
            let none = optimal_c_formula(Algorithm::new(DenseShift15, None), p, 0.1);
            let lkf = optimal_c_formula(Algorithm::new(DenseShift15, LocalKernelFusion), p, 0.1);
            assert!(reuse > none && none > lkf);
        }
    }

    #[test]
    fn sparse_repl_likes_sparse_problems() {
        // Table IV: the 2.5D sparse-replicating optimum grows as φ
        // shrinks ("a sparser input S benefits from higher replication").
        let alg = Algorithm::new(SparseRepl25, None);
        let c_sparse = optimal_c_formula(alg, 512, 0.01);
        let c_dense = optimal_c_formula(alg, 512, 1.0);
        assert!(c_sparse > c_dense);
    }

    #[test]
    fn search_respects_validity() {
        let alg = Algorithm::new(DenseRepl25, None);
        // p = 32: valid c are those with square layers: c=2 (16=4²),
        // c=8 (4=2²), c=32 — the paper notes this constraint hurts 2.5D
        // at p=32.
        let valid = valid_replication_factors(alg, 32, 16);
        assert_eq!(valid, vec![2, 8]);
        let d = dims(1 << 16, 64);
        let c = optimal_c_search(alg, 32, d, d.n * 8, 16).unwrap();
        assert!(valid.contains(&c));
    }

    #[test]
    fn messages_scale_with_grid_shape() {
        let d15 = Algorithm::new(DenseShift15, None);
        let d25 = Algorithm::new(DenseRepl25, None);
        // 1.5D: O(p/c); 2.5D: O(√(p/c)).
        assert!(
            messages_per_processor(d15, 1024, 4) > messages_per_processor(d25, 1024, 4),
            "2.5D must send fewer messages at scale"
        );
    }

    #[test]
    fn routing_admitted_only_without_elision() {
        for alg in Algorithm::all_benchmarked() {
            assert!(alg.admits(Routing::Dense));
            assert_eq!(alg.admits(Routing::Pattern), alg.elision == None);
            assert_eq!(
                routed_words_per_processor(alg, 64, 4, dims(1 << 16, 64), 1 << 18).is_some(),
                alg.elision == None
            );
            assert_eq!(
                routed_messages_per_processor(alg, 64, 4).is_some(),
                alg.elision == None
            );
        }
    }

    #[test]
    fn routing_pays_off_only_when_sparse() {
        // Very sparse S: the per-member need sets are tiny, so routed
        // variants undercut dense for every family. Near-dense S: every
        // indexed hop caps at the dense tile and the pattern exchange
        // is pure overhead, so routing must not be predicted to win.
        // c = 4 is admissible for every family at p = 256 (layer 64 = 8²)
        // and keeps both replication and propagation terms alive.
        let p = 256;
        let c = 4;
        for family in AlgorithmFamily::ALL {
            let alg = Algorithm::new(family, None);
            let sparse_d = dims(1 << 18, 256);
            let sparse_nnz = sparse_d.n * 2;
            let dense_w = words_per_processor(alg, p, c, sparse_d, sparse_nnz);
            let routed_w = routed_words_per_processor(alg, p, c, sparse_d, sparse_nnz).unwrap();
            assert!(
                routed_w < dense_w,
                "{family:?}: routed {routed_w} !< dense {dense_w} on a sparse problem"
            );

            let dense_prob = dims(1 << 12, 8);
            let dense_nnz = dense_prob.n * 1024;
            let dw = words_per_processor(alg, p, c, dense_prob, dense_nnz);
            let rw = routed_words_per_processor(alg, p, c, dense_prob, dense_nnz).unwrap();
            assert!(
                rw >= dw * 0.5,
                "{family:?}: routed {rw} implausibly cheap vs dense {dw} on a dense problem"
            );
        }
    }

    #[test]
    fn predict_best_scores_both_routings() {
        let model = MachineModel::bandwidth_only();
        // Pin the family: with tiny per-block supports, the routed
        // variant of 1.5D dense shifting must beat its dense twin, and
        // predict_best must surface that as `routing: Pattern`.
        let candidates = [Algorithm::new(DenseShift15, None)];
        let d = dims(1 << 18, 64);
        let nnz = d.n * 2;
        let best = predict_best(&model, &candidates, 64, d, nnz, 16);
        assert_eq!(best.routing, Routing::Pattern);
        let dense_twin = predicted_comm_time(&model, best.algorithm, 64, best.c, d, nnz);
        assert!(best.time_s < dense_twin);

        // Saturated supports: the dense twin must win (the exchange is
        // pure overhead once every hop caps at the dense tile).
        let dp = dims(1 << 12, 8);
        let saturated = predict_best(&model, &candidates, 64, dp, dp.n * 1024, 16);
        assert_eq!(saturated.routing, Routing::Dense);
    }
}
