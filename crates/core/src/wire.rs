//! Wire encodings for the planner/session vocabulary.
//!
//! Under the socket backend, `SimWorld::run` results genuinely cross
//! process boundaries, so any type a distributed program returns must
//! implement [`WirePayload`]. These impls cover the planning and
//! re-planning record types tests and applications commonly return:
//! enums travel as one-byte tags, structs as field-wise encodings.

use dsk_comm::{Payload, WirePayload, WireReader};

use crate::common::{AlgorithmFamily, Elision, Routing, Sampling};
use crate::kernel::{KernelId, KernelPlan};
use crate::session::ReplanEvent;
use crate::theory::Algorithm;

fn tag_of<T: PartialEq + Copy>(all: &[T], v: T, what: &str) -> u8 {
    all.iter()
        .position(|x| *x == v)
        .unwrap_or_else(|| panic!("unencodable {what}")) as u8
}

fn from_tag<T: Copy>(all: &[T], tag: u8, what: &str) -> T {
    *all.get(tag as usize)
        .unwrap_or_else(|| panic!("bad wire tag {tag} for {what}"))
}

macro_rules! impl_wire_enum {
    ($ty:ty, $all:expr) => {
        impl Payload for $ty {
            fn words(&self) -> usize {
                1
            }
        }

        impl WirePayload for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.push(tag_of(&$all, *self, stringify!($ty)));
            }
            fn decode(r: &mut WireReader<'_>) -> Self {
                from_tag(&$all, r.u8(), stringify!($ty))
            }
        }
    };
}

impl_wire_enum!(AlgorithmFamily, AlgorithmFamily::ALL);
impl_wire_enum!(Elision, Elision::ALL);
impl_wire_enum!(Routing, Routing::ALL);
impl_wire_enum!(Sampling, [Sampling::Values, Sampling::Ones]);

impl Payload for Algorithm {
    fn words(&self) -> usize {
        1
    }
}

impl WirePayload for Algorithm {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.family.encode(buf);
        self.elision.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Self {
        let family = AlgorithmFamily::decode(r);
        let elision = Elision::decode(r);
        Algorithm::new(family, elision)
    }
}

impl Payload for KernelId {
    fn words(&self) -> usize {
        1
    }
}

impl WirePayload for KernelId {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KernelId::Baseline1D => buf.push(u8::MAX),
            KernelId::Family(f) => f.encode(buf),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Self {
        match r.u8() {
            u8::MAX => KernelId::Baseline1D,
            tag => KernelId::Family(from_tag(&AlgorithmFamily::ALL, tag, "AlgorithmFamily")),
        }
    }
}

impl Payload for KernelPlan {
    fn words(&self) -> usize {
        5
    }
}

impl WirePayload for KernelPlan {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.c.encode(buf);
        self.elision.encode(buf);
        self.routing.encode(buf);
        self.predicted_comm_s.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Self {
        KernelPlan {
            id: KernelId::decode(r),
            c: usize::decode(r),
            elision: Elision::decode(r),
            routing: Routing::decode(r),
            predicted_comm_s: Option::<f64>::decode(r),
        }
    }
}

impl Payload for ReplanEvent {
    fn words(&self) -> usize {
        2 * KernelPlan::words(&self.from) + 8
    }
}

impl WirePayload for ReplanEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.at_call.encode(buf);
        self.observed_nnz.encode(buf);
        self.observed_phi.encode(buf);
        self.from.encode(buf);
        self.to.encode(buf);
        self.predicted_from_s.encode(buf);
        self.predicted_to_s.encode(buf);
        self.migrated.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Self {
        ReplanEvent {
            at_call: u64::decode(r),
            observed_nnz: usize::decode(r),
            observed_phi: f64::decode(r),
            from: KernelPlan::decode(r),
            to: KernelPlan::decode(r),
            predicted_from_s: Option::<f64>::decode(r),
            predicted_to_s: f64::decode(r),
            migrated: bool::decode(r),
        }
    }
}

/// Encode a replan log (helper for composite types carrying
/// `Vec<ReplanEvent>` — the orphan rule forbids a direct `Vec` impl
/// outside `dsk-comm`).
pub fn encode_events(events: &[ReplanEvent], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        e.encode(buf);
    }
}

/// Decode a replan log written by [`encode_events`].
pub fn decode_events(r: &mut WireReader<'_>) -> Vec<ReplanEvent> {
    let n = r.read_len();
    (0..n).map(|_| ReplanEvent::decode(r)).collect()
}

/// Words of a replan log in flight.
pub fn events_words(events: &[ReplanEvent]) -> usize {
    events.iter().map(Payload::words).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WirePayload + PartialEq + std::fmt::Debug + Clone>(v: T) {
        assert_eq!(T::from_wire(&v.to_wire()), v);
    }

    #[test]
    fn planner_vocabulary_roundtrips() {
        for f in AlgorithmFamily::ALL {
            roundtrip(f);
        }
        for e in Elision::ALL {
            roundtrip(e);
        }
        for rt in Routing::ALL {
            roundtrip(rt);
        }
        roundtrip(KernelId::Baseline1D);
        roundtrip(KernelId::Family(AlgorithmFamily::SparseRepl25));
        roundtrip(KernelPlan {
            id: KernelId::Family(AlgorithmFamily::DenseShift15),
            c: 4,
            elision: Elision::LocalKernelFusion,
            routing: Routing::Dense,
            predicted_comm_s: Some(1.25e-3),
        });
        roundtrip(KernelPlan {
            id: KernelId::Family(AlgorithmFamily::SparseShift15),
            c: 2,
            elision: Elision::None,
            routing: Routing::Pattern,
            predicted_comm_s: None,
        });
        roundtrip(Algorithm::new(
            AlgorithmFamily::SparseShift15,
            Elision::ReplicationReuse,
        ));
    }

    #[test]
    fn replan_events_roundtrip() {
        let plan = KernelPlan {
            id: KernelId::Family(AlgorithmFamily::DenseShift15),
            c: 2,
            elision: Elision::None,
            routing: Routing::Pattern,
            predicted_comm_s: None,
        };
        let ev = ReplanEvent {
            at_call: 7,
            observed_nnz: 1234,
            observed_phi: 0.125,
            from: plan,
            to: KernelPlan {
                id: KernelId::Family(AlgorithmFamily::SparseShift15),
                c: 4,
                elision: Elision::ReplicationReuse,
                routing: Routing::Dense,
                predicted_comm_s: Some(9.0),
            },
            predicted_from_s: Some(11.0),
            predicted_to_s: 9.0,
            migrated: true,
        };
        let events = vec![ev.clone(), ev];
        let mut bytes = Vec::new();
        encode_events(&events, &mut bytes);
        let mut rd = WireReader::new(&bytes);
        let back = decode_events(&mut rd);
        assert!(rd.is_empty());
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].observed_nnz, 1234);
        assert!(back[0].migrated);
        assert_eq!(back[0].to.c, 4);
    }
}
