//! The per-rank worker handle: a [`DistKernel`] trait object plus its
//! construction plan.
//!
//! [`DistWorker`] lets harness and application code construct and drive
//! any of the paper's algorithms (and the 1D baseline) uniformly. It
//! dereferences to [`dyn DistKernel`](DistKernel), so every kernel
//! method is available directly — the per-method `match` boilerplate
//! the old enum carried is gone; dispatch happens once, at
//! construction, inside [`KernelBuilder`]. Outputs are returned in each
//! kernel's native layout (see the trait's layout contract); use
//! [`crate::layout`] to gather or convert.

use std::ops::{Deref, DerefMut};

use dsk_comm::Comm;

use crate::common::{AlgorithmFamily, Routing};
use crate::global::GlobalProblem;
use crate::kernel::{DistKernel, KernelBuilder, KernelId, KernelPlan};
use crate::staged::StagedProblem;

/// A per-rank worker for any distributed kernel, with the plan it was
/// built from.
pub struct DistWorker {
    kernel: Box<dyn DistKernel>,
    plan: KernelPlan,
}

impl DistWorker {
    /// Wrap an already-constructed kernel (used by [`KernelBuilder`]).
    pub(crate) fn from_parts(kernel: Box<dyn DistKernel>, plan: KernelPlan) -> Self {
        debug_assert_eq!(kernel.id(), plan.id, "plan does not match kernel");
        DistWorker { kernel, plan }
    }

    /// Build this rank's worker for `family` with replication factor
    /// `c` from a borrowed global problem (test convenience; planner
    /// callers use [`KernelBuilder`] directly). Pins the paper's dense
    /// schedules — pattern routing is opt-in via
    /// [`KernelBuilder::routing`], never an implicit swap under a
    /// pinned reconstruction.
    pub fn from_global(
        comm: &Comm,
        family: AlgorithmFamily,
        c: usize,
        prob: &GlobalProblem,
    ) -> Self {
        KernelBuilder::new(prob)
            .family(family)
            .replication(c)
            .routing(Routing::Dense)
            .build(comm)
    }

    /// Build from shared staging (the benchmark path: the expensive
    /// sparse partition is computed once per world, not once per rank).
    /// Dense-routed, like [`DistWorker::from_global`].
    pub fn from_staged(
        comm: &Comm,
        family: AlgorithmFamily,
        c: usize,
        staged: &StagedProblem,
    ) -> Self {
        KernelBuilder::from_staged(staged)
            .family(family)
            .replication(c)
            .routing(Routing::Dense)
            .build(comm)
    }

    /// Which implementation this worker wraps.
    pub fn id(&self) -> KernelId {
        self.plan.id
    }

    /// The algorithm family, when the worker wraps one of the four
    /// families (`None` for the baseline).
    pub fn family(&self) -> Option<AlgorithmFamily> {
        self.plan.id.family()
    }

    /// Replication factor the worker was built with.
    pub fn c(&self) -> usize {
        self.plan.c
    }

    /// The plan this worker was built from (including the recommended
    /// elision for fused calls).
    pub fn plan(&self) -> KernelPlan {
        self.plan
    }

    /// Borrow the kernel trait object.
    pub fn kernel(&self) -> &dyn DistKernel {
        &*self.kernel
    }

    /// Mutably borrow the kernel trait object.
    pub fn kernel_mut(&mut self) -> &mut dyn DistKernel {
        &mut *self.kernel
    }
}

impl Deref for DistWorker {
    type Target = dyn DistKernel;

    fn deref(&self) -> &Self::Target {
        &*self.kernel
    }
}

impl DerefMut for DistWorker {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut *self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Sampling;
    use crate::theory::Algorithm;
    use dsk_comm::{MachineModel, SimWorld};
    use std::sync::Arc;

    #[test]
    fn every_benchmarked_algorithm_runs_through_the_worker() {
        // p = 8 admits every family (2.5D: c=2 gives 2×2 layers).
        let prob = Arc::new(GlobalProblem::erdos_renyi(24, 24, 8, 3, 91));
        let expect = prob.reference_fused_b();
        for alg in Algorithm::all_benchmarked() {
            let c = if alg.family.valid_c(8, 2) { 2 } else { 1 };
            let pr = Arc::clone(&prob);
            let w = SimWorld::new(8, MachineModel::bandwidth_only());
            let out = w.run(move |comm| {
                let mut worker = DistWorker::from_global(comm, alg.family, c, &pr);
                assert_eq!(worker.family(), Some(alg.family));
                let local = worker.fused_mm_b(None, alg.elision, Sampling::Values);
                // Smoke invariant: every local piece is finite.
                assert!(local.as_slice().iter().all(|v| v.is_finite()));
                local.as_slice().iter().map(|v| v * v).sum::<f64>()
            });
            // The distributed Frobenius norm must match the reference
            // regardless of layout (sum of squares is layout-invariant).
            let total: f64 = out.iter().map(|o| o.value).sum();
            let expect_sq: f64 = expect.as_slice().iter().map(|v| v * v).sum();
            assert!(
                (total - expect_sq).abs() <= 1e-6 * expect_sq.max(1.0),
                "norm mismatch for {:?}",
                alg
            );
        }
    }

    #[test]
    fn baseline_runs_through_the_worker() {
        let prob = Arc::new(GlobalProblem::erdos_renyi(24, 24, 6, 3, 92));
        let expect = prob.reference_fused_b();
        let expect_sq: f64 = expect.as_slice().iter().map(|v| v * v).sum();
        let w = SimWorld::new(4, MachineModel::bandwidth_only());
        let out = w.run(move |comm| {
            let mut worker = KernelBuilder::new(&prob).baseline().build(comm);
            assert_eq!(worker.family(), None);
            let local = worker.fused_mm_b(None, crate::common::Elision::None, Sampling::Values);
            local.as_slice().iter().map(|v| v * v).sum::<f64>()
        });
        let total: f64 = out.iter().map(|o| o.value).sum();
        assert!(
            (total - expect_sq).abs() <= 1e-6 * expect_sq.max(1.0),
            "baseline norm mismatch"
        );
    }
}
