//! Unified dispatch over the four algorithm families.
//!
//! [`DistWorker`] lets harness code construct and drive any of the
//! paper's algorithms uniformly: the benchmark binaries iterate over
//! [`theory::Algorithm`](crate::theory::Algorithm) values and need a
//! single entry point per (family, c, elision) combination. Outputs are
//! returned in each family's native layout (see the family modules for
//! the layout contracts); use [`crate::layout`] to gather or convert.

use dsk_comm::Comm;
use dsk_dense::Mat;
use dsk_sparse::CooMatrix;

use crate::common::{AlgorithmFamily, Elision, ProblemDims, Sampling};
use crate::dr25::DenseRepl25;
use crate::ds15::DenseShift15;
use crate::global::GlobalProblem;
use crate::sr25::SparseRepl25;
use crate::ss15::SparseShift15;

/// A per-rank worker for any algorithm family.
pub enum DistWorker {
    /// 1.5D dense-shifting.
    Ds15(DenseShift15),
    /// 1.5D sparse-shifting.
    Ss15(SparseShift15),
    /// 2.5D dense-replicating.
    Dr25(DenseRepl25),
    /// 2.5D sparse-replicating.
    Sr25(SparseRepl25),
}

impl DistWorker {
    /// Build this rank's worker for `family` with replication factor
    /// `c` from a borrowed global problem.
    pub fn from_global(
        comm: &Comm,
        family: AlgorithmFamily,
        c: usize,
        prob: &GlobalProblem,
    ) -> Self {
        Self::from_staged(comm, family, c, &crate::staged::StagedProblem::ephemeral(prob))
    }

    /// Build from shared staging (the benchmark path: the expensive
    /// sparse partition is computed once per world, not once per rank).
    pub fn from_staged(
        comm: &Comm,
        family: AlgorithmFamily,
        c: usize,
        staged: &crate::staged::StagedProblem,
    ) -> Self {
        match family {
            AlgorithmFamily::DenseShift15 => {
                DistWorker::Ds15(DenseShift15::from_staged(comm, c, staged))
            }
            AlgorithmFamily::SparseShift15 => {
                DistWorker::Ss15(SparseShift15::from_staged(comm, c, staged))
            }
            AlgorithmFamily::DenseRepl25 => {
                DistWorker::Dr25(DenseRepl25::from_staged(comm, c, staged))
            }
            AlgorithmFamily::SparseRepl25 => {
                DistWorker::Sr25(SparseRepl25::from_staged(comm, c, staged))
            }
        }
    }

    /// Which family this worker implements.
    pub fn family(&self) -> AlgorithmFamily {
        match self {
            DistWorker::Ds15(_) => AlgorithmFamily::DenseShift15,
            DistWorker::Ss15(_) => AlgorithmFamily::SparseShift15,
            DistWorker::Dr25(_) => AlgorithmFamily::DenseRepl25,
            DistWorker::Sr25(_) => AlgorithmFamily::SparseRepl25,
        }
    }

    /// Problem dimensions.
    pub fn dims(&self) -> ProblemDims {
        match self {
            DistWorker::Ds15(w) => w.dims(),
            DistWorker::Ss15(w) => w.dims(),
            DistWorker::Dr25(w) => w.dims(),
            DistWorker::Sr25(w) => w.dims(),
        }
    }

    /// Distributed SDDMM on the stored operands.
    pub fn sddmm(&mut self) {
        match self {
            DistWorker::Ds15(w) => w.sddmm(),
            DistWorker::Ss15(w) => w.sddmm(),
            DistWorker::Dr25(w) => w.sddmm(),
            DistWorker::Sr25(w) => w.sddmm(),
        }
    }

    /// FusedMMA on the stored operands (native output layout).
    pub fn fused_mm_a(&mut self, elision: Elision, sampling: Sampling) -> Mat {
        match self {
            DistWorker::Ds15(w) => w.fused_mm_a(None, elision, sampling),
            DistWorker::Ss15(w) => w.fused_mm_a(None, elision, sampling),
            DistWorker::Dr25(w) => w.fused_mm_a(None, elision, sampling),
            DistWorker::Sr25(w) => w.fused_mm_a(None, elision, sampling),
        }
    }

    /// FusedMMB on the stored operands (native output layout).
    pub fn fused_mm_b(&mut self, elision: Elision, sampling: Sampling) -> Mat {
        match self {
            DistWorker::Ds15(w) => w.fused_mm_b(None, elision, sampling),
            DistWorker::Ss15(w) => w.fused_mm_b(None, elision, sampling),
            DistWorker::Dr25(w) => w.fused_mm_b(None, elision, sampling),
            DistWorker::Sr25(w) => w.fused_mm_b(None, elision, sampling),
        }
    }

    /// Gather the last SDDMM result to rank 0 (verification).
    pub fn gather_r(&self, comm: &Comm) -> Option<CooMatrix> {
        match self {
            DistWorker::Ds15(w) => w.gather_r(comm),
            DistWorker::Ss15(w) => w.gather_r(comm),
            DistWorker::Dr25(w) => w.gather_r(comm),
            DistWorker::Sr25(w) => w.gather_r(comm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::Algorithm;
    use dsk_comm::{MachineModel, SimWorld};
    use std::sync::Arc;

    #[test]
    fn every_benchmarked_algorithm_runs_through_the_worker() {
        // p = 8 admits every family (2.5D: c=2 gives 2×2 layers).
        let prob = Arc::new(GlobalProblem::erdos_renyi(24, 24, 8, 3, 91));
        let expect = prob.reference_fused_b();
        for alg in Algorithm::all_benchmarked() {
            let c = if alg.family.valid_c(8, 2) { 2 } else { 1 };
            let pr = Arc::clone(&prob);
            let w = SimWorld::new(8, MachineModel::bandwidth_only());
            let out = w.run(move |comm| {
                let mut worker = DistWorker::from_global(comm, alg.family, c, &pr);
                let local = worker.fused_mm_b(alg.elision, Sampling::Values);
                // Smoke invariant: every local piece is finite.
                assert!(local.as_slice().iter().all(|v| v.is_finite()));
                local.as_slice().iter().map(|v| v * v).sum::<f64>()
            });
            // The distributed Frobenius norm must match the reference
            // regardless of layout (sum of squares is layout-invariant).
            let total: f64 = out.iter().map(|o| o.value).sum();
            let expect_sq: f64 = expect.as_slice().iter().map(|v| v * v).sum();
            assert!(
                (total - expect_sq).abs() <= 1e-6 * expect_sq.max(1.0),
                "norm mismatch for {:?}",
                alg
            );
        }
    }
}
