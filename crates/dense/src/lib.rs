//! # dsk-dense — dense matrices for the sparse-kernel workspace
//!
//! A deliberately small row-major dense matrix type plus the handful of
//! BLAS-like operations the distributed kernels need: panel extraction
//! and assembly (matrices are constantly cut into block rows / block
//! columns and re-assembled), GEMM for reference computations and the
//! GAT weight transforms, row dot products for SDDMM, and norms for
//! verification. The paper wraps Eigen for this role; we implement the
//! equivalent functionality directly.

pub mod mat;
pub mod ops;

pub use mat::Mat;
