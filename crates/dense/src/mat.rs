//! The row-major dense matrix type.

use dsk_rng::Rng;

/// A dense `nrows × ncols` matrix of `f64`, stored row-major.
///
/// Rows are the unit of distribution in every algorithm in this
/// workspace (embedding matrices are tall and skinny), so row access is
/// contiguous and free of bounds arithmetic surprises.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Mat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Build from a row-major buffer. `data.len()` must equal
    /// `nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "buffer length {} does not match {nrows}x{ncols}",
            data.len()
        );
        Mat { nrows, ncols, data }
    }

    /// Build by evaluating `f(i, j)` at every position.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Mat { nrows, ncols, data }
    }

    /// Deterministic pseudo-random matrix with entries uniform in
    /// `[-1, 1]`, fully determined by `seed`. Used so that each rank of a
    /// distributed run can generate its own block of a global matrix
    /// without communication.
    pub fn random(nrows: usize, ncols: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let data = (0..nrows * ncols)
            .map(|_| rng.gen_range_f64(-1.0, 1.0))
            .collect();
        Mat { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `nrows * ncols`.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j]
    }

    /// Set entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.ncols + j] = v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.nrows, "row {i} out of {}", self.nrows);
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.nrows, "row {i} out of {}", self.nrows);
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Set every entry to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Copy of the row range `rows` as a new matrix.
    pub fn rows_block(&self, rows: std::ops::Range<usize>) -> Mat {
        assert!(rows.end <= self.nrows, "row range out of bounds");
        Mat {
            nrows: rows.len(),
            ncols: self.ncols,
            data: self.data[rows.start * self.ncols..rows.end * self.ncols].to_vec(),
        }
    }

    /// Copy of the column range `cols` as a new matrix.
    pub fn cols_block(&self, cols: std::ops::Range<usize>) -> Mat {
        assert!(cols.end <= self.ncols, "column range out of bounds");
        let mut out = Mat::zeros(self.nrows, cols.len());
        for i in 0..self.nrows {
            out.row_mut(i)
                .copy_from_slice(&self.row(i)[cols.start..cols.end]);
        }
        out
    }

    /// Copy of the intersection of a row range and a column range.
    pub fn block(&self, rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Mat {
        assert!(rows.end <= self.nrows && cols.end <= self.ncols);
        let mut out = Mat::zeros(rows.len(), cols.len());
        for (oi, i) in rows.enumerate() {
            out.row_mut(oi)
                .copy_from_slice(&self.row(i)[cols.start..cols.end]);
        }
        out
    }

    /// Overwrite the row range starting at `row0` with `block`.
    pub fn set_rows_block(&mut self, row0: usize, block: &Mat) {
        assert_eq!(block.ncols, self.ncols, "column count mismatch");
        assert!(row0 + block.nrows <= self.nrows, "row block out of bounds");
        let start = row0 * self.ncols;
        self.data[start..start + block.len()].copy_from_slice(&block.data);
    }

    /// Overwrite the sub-block with top-left corner `(row0, col0)`.
    pub fn set_block(&mut self, row0: usize, col0: usize, block: &Mat) {
        assert!(row0 + block.nrows <= self.nrows && col0 + block.ncols <= self.ncols);
        for i in 0..block.nrows {
            let dst = &mut self.row_mut(row0 + i)[col0..col0 + block.ncols];
            dst.copy_from_slice(block.row(i));
        }
    }

    /// Stack matrices vertically (all must share a column count).
    pub fn vstack(blocks: &[Mat]) -> Mat {
        assert!(!blocks.is_empty(), "vstack of nothing");
        let ncols = blocks[0].ncols;
        let nrows = blocks.iter().map(|b| b.nrows).sum();
        let mut data = Vec::with_capacity(nrows * ncols);
        for b in blocks {
            assert_eq!(b.ncols, ncols, "vstack column mismatch");
            data.extend_from_slice(&b.data);
        }
        Mat { nrows, ncols, data }
    }

    /// Concatenate matrices horizontally (all must share a row count).
    pub fn hstack(blocks: &[Mat]) -> Mat {
        assert!(!blocks.is_empty(), "hstack of nothing");
        let nrows = blocks[0].nrows;
        let ncols = blocks.iter().map(|b| b.ncols).sum();
        let mut out = Mat::zeros(nrows, ncols);
        let mut col0 = 0;
        for b in blocks {
            assert_eq!(b.nrows, nrows, "hstack row mismatch");
            out.set_block(0, col0, b);
            col0 += b.ncols;
        }
        out
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.data[j * self.nrows + i] = self.data[i * self.ncols + j];
            }
        }
        out
    }
}

/// A dense tile in flight costs one word per entry — identical to
/// shipping its raw buffer, so switching a shift from `Vec<f64>` to
/// `Mat` changes no modeled cost, only self-describes the shape.
impl dsk_comm::Payload for Mat {
    fn words(&self) -> usize {
        self.data.len()
    }
}

/// Wire encoding: shape header then the row-major buffer. This is the
/// dense-tile case of the wire backend's encode/decode surface.
impl dsk_comm::WirePayload for Mat {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.nrows as u64).encode(buf);
        (self.ncols as u64).encode(buf);
        self.data.encode(buf);
    }

    fn decode(r: &mut dsk_comm::WireReader<'_>) -> Self {
        let nrows = r.read_len();
        let ncols = r.read_len();
        let data = Vec::<f64>::decode(r);
        Mat::from_vec(nrows, ncols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsk_comm::{Payload, WirePayload};

    #[test]
    fn dense_tile_wire_roundtrip() {
        for m in [
            Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64 - 5.5),
            Mat::zeros(0, 7),
            Mat::zeros(7, 0),
            Mat::from_vec(1, 1, vec![2.25]),
        ] {
            assert_eq!(m.words(), m.len());
            let bytes = m.to_wire();
            assert_eq!(Mat::from_wire(&bytes), m);
        }
    }

    #[test]
    fn zeros_and_indexing() {
        let mut m = Mat::zeros(3, 2);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        m.set(2, 1, 5.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.row(2), &[0.0, 5.0]);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Mat::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Mat::random(4, 4, 42);
        let b = Mat::random(4, 4, 42);
        let c = Mat::random(4, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn blocks_extract_and_set() {
        let m = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = m.block(1..3, 2..4);
        assert_eq!(b.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
        let rb = m.rows_block(2..4);
        assert_eq!(rb.row(0), m.row(2));
        let cb = m.cols_block(1..2);
        assert_eq!(cb.as_slice(), &[1.0, 5.0, 9.0, 13.0]);

        let mut z = Mat::zeros(4, 4);
        z.set_block(1, 2, &b);
        assert_eq!(z.get(1, 2), 6.0);
        assert_eq!(z.get(2, 3), 11.0);
        let mut z2 = Mat::zeros(4, 4);
        z2.set_rows_block(2, &rb);
        assert_eq!(z2.row(2), m.row(2));
        assert_eq!(z2.row(3), m.row(3));
    }

    #[test]
    fn stack_roundtrips_blocks() {
        let m = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let parts: Vec<Mat> = vec![m.rows_block(0..2), m.rows_block(2..4)];
        assert_eq!(Mat::vstack(&parts), m);
        let cparts: Vec<Mat> = vec![m.cols_block(0..1), m.cols_block(1..3)];
        assert_eq!(Mat::hstack(&cparts), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::random(5, 3, 7);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 4), m.get(4, 2));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Mat::from_vec(2, 2, vec![0.0; 3]);
    }
}
