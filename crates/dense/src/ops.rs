//! BLAS-like operations on [`Mat`].

use crate::mat::Mat;

/// `y += alpha * x`, element-wise over whole matrices of equal shape.
pub fn axpy(alpha: f64, x: &Mat, y: &mut Mat) {
    assert_eq!(x.nrows(), y.nrows(), "axpy shape mismatch");
    assert_eq!(x.ncols(), y.ncols(), "axpy shape mismatch");
    for (yv, xv) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *yv += alpha * xv;
    }
}

/// Scale every entry: `x *= alpha`.
pub fn scale(x: &mut Mat, alpha: f64) {
    for v in x.as_mut_slice() {
        *v *= alpha;
    }
}

/// Element-wise accumulate `y += x`.
pub fn add_assign(y: &mut Mat, x: &Mat) {
    axpy(1.0, x, y);
}

/// Frobenius inner product `⟨x, y⟩ = Σ xᵢⱼ yᵢⱼ`.
pub fn frob_dot(x: &Mat, y: &Mat) -> f64 {
    assert_eq!(x.len(), y.len(), "frob_dot shape mismatch");
    x.as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(a, b)| a * b)
        .sum()
}

/// Frobenius norm `‖x‖_F`.
pub fn frob_norm(x: &Mat) -> f64 {
    frob_dot(x, x).sqrt()
}

/// Maximum absolute entry-wise difference between two equal-shaped
/// matrices (the verification metric used throughout the test suite).
pub fn max_abs_diff(x: &Mat, y: &Mat) -> f64 {
    assert_eq!(x.nrows(), y.nrows(), "shape mismatch");
    assert_eq!(x.ncols(), y.ncols(), "shape mismatch");
    x.as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Dot product of row `i` of `a` with row `j` of `b` (the SDDMM
/// primitive). Both rows must have equal length.
#[inline]
pub fn row_dot(a: &Mat, i: usize, b: &Mat, j: usize) -> f64 {
    debug_assert_eq!(a.ncols(), b.ncols());
    let (ra, rb) = (a.row(i), b.row(j));
    ra.iter().zip(rb).map(|(x, y)| x * y).sum()
}

/// `c += a · b` (plain GEMM, `a: m×k`, `b: k×n`, `c: m×n`), i-k-j loop
/// order for streaming access to `b` and `c`.
pub fn gemm_acc(c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.ncols(), b.nrows(), "gemm inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm output rows mismatch");
    assert_eq!(c.ncols(), b.ncols(), "gemm output cols mismatch");
    let n = b.ncols();
    for i in 0..a.nrows() {
        let arow = a.row(i);
        // Split the borrow: c row i is disjoint from a and b.
        let crow = c.row_mut(i);
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b.as_slice()[k * n..(k + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
}

/// `c += a · bᵀ` (`a: m×k`, `b: n×k`, `c: m×n`) — the dense reference
/// for SDDMM-style row-by-row dot products.
pub fn gemm_abt_acc(c: &mut Mat, a: &Mat, b: &Mat) {
    assert_eq!(a.ncols(), b.ncols(), "gemm_abt inner dimension mismatch");
    assert_eq!(c.nrows(), a.nrows(), "gemm_abt output rows mismatch");
    assert_eq!(c.ncols(), b.nrows(), "gemm_abt output cols mismatch");
    for i in 0..a.nrows() {
        for j in 0..b.nrows() {
            let v = row_dot(a, i, b, j);
            c.set(i, j, c.get(i, j) + v);
        }
    }
}

/// Flop count of `gemm_acc` with these operand shapes (2·m·k·n).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Mat, Mat) {
        let a = Mat::from_fn(2, 3, |i, j| (i * 3 + j + 1) as f64);
        let b = Mat::from_fn(3, 2, |i, j| (i * 2 + j + 1) as f64);
        (a, b)
    }

    #[test]
    fn gemm_matches_hand_computation() {
        let (a, b) = small();
        let mut c = Mat::zeros(2, 2);
        gemm_acc(&mut c, &a, &b);
        // a = [1 2 3; 4 5 6], b = [1 2; 3 4; 5 6]
        assert_eq!(c.as_slice(), &[22.0, 28.0, 49.0, 64.0]);
    }

    #[test]
    fn gemm_abt_matches_gemm_with_transpose() {
        let a = Mat::random(4, 3, 1);
        let b = Mat::random(5, 3, 2);
        let mut c1 = Mat::zeros(4, 5);
        gemm_abt_acc(&mut c1, &a, &b);
        let mut c2 = Mat::zeros(4, 5);
        gemm_acc(&mut c2, &a, &b.transpose());
        assert!(max_abs_diff(&c1, &c2) < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let x = Mat::from_fn(2, 2, |_, _| 1.0);
        let mut y = Mat::from_fn(2, 2, |_, _| 2.0);
        axpy(3.0, &x, &mut y);
        assert_eq!(y.as_slice(), &[5.0; 4]);
        scale(&mut y, 0.5);
        assert_eq!(y.as_slice(), &[2.5; 4]);
    }

    #[test]
    fn norms_and_dots() {
        let x = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((frob_norm(&x) - 5.0).abs() < 1e-12);
        let y = Mat::from_vec(1, 2, vec![1.0, 2.0]);
        assert!((frob_dot(&x, &y) - 11.0).abs() < 1e-12);
        assert!((max_abs_diff(&x, &y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn row_dot_is_sddmm_primitive() {
        let a = Mat::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Mat::from_fn(2, 3, |i, j| (i * j) as f64);
        // row 1 of a = [1,2,3], row 1 of b = [0,1,2] → 0+2+6
        assert_eq!(row_dot(&a, 1, &b, 1), 8.0);
    }

    #[test]
    fn gemm_flops_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}
