//! Randomized property tests for the dense matrix substrate, drawn from
//! a seeded PRNG so failures reproduce exactly.

use dsk_dense::ops;
use dsk_dense::Mat;
use dsk_rng::Rng;

const CASES: usize = 32;

/// Any block decomposition re-stacks to the original matrix.
#[test]
fn vstack_inverts_row_blocks() {
    let mut rng = Rng::seed_from_u64(0xD001);
    for _ in 0..CASES {
        let rows = 1 + rng.gen_index(39);
        let cols = 1 + rng.gen_index(9);
        let parts = 1 + rng.gen_index(5);
        let seed = rng.next_u64() % 500;
        let m = Mat::random(rows, cols, seed);
        let mut blocks = Vec::new();
        let mut start = 0;
        for k in 0..parts {
            let len = (rows - start) / (parts - k);
            blocks.push(m.rows_block(start..start + len));
            start += len;
        }
        assert_eq!(Mat::vstack(&blocks), m);
    }
}

/// Column splits re-stack horizontally.
#[test]
fn hstack_inverts_col_blocks() {
    let mut rng = Rng::seed_from_u64(0xD002);
    for _ in 0..CASES {
        let rows = 1 + rng.gen_index(19);
        let cols = 2 + rng.gen_index(10);
        let cut = (1 + rng.gen_index(10)).min(cols - 1);
        let seed = rng.next_u64() % 500;
        let m = Mat::random(rows, cols, seed);
        let left = m.cols_block(0..cut);
        let right = m.cols_block(cut..cols);
        assert_eq!(Mat::hstack(&[left, right]), m);
    }
}

/// GEMM respects the transpose identity (A·B)ᵀ = Bᵀ·Aᵀ.
#[test]
fn gemm_transpose_identity() {
    let mut rng = Rng::seed_from_u64(0xD003);
    for _ in 0..CASES {
        let m = 1 + rng.gen_index(9);
        let k = 1 + rng.gen_index(9);
        let n = 1 + rng.gen_index(9);
        let seed = rng.next_u64() % 500;
        let a = Mat::random(m, k, seed);
        let b = Mat::random(k, n, seed + 1);
        let mut ab = Mat::zeros(m, n);
        ops::gemm_acc(&mut ab, &a, &b);
        let mut btat = Mat::zeros(n, m);
        ops::gemm_acc(&mut btat, &b.transpose(), &a.transpose());
        assert!(ops::max_abs_diff(&ab.transpose(), &btat) < 1e-10);
    }
}

/// The Frobenius inner product is symmetric and positive on the
/// diagonal.
#[test]
fn frob_dot_symmetry() {
    let mut rng = Rng::seed_from_u64(0xD004);
    for _ in 0..CASES {
        let rows = 1 + rng.gen_index(14);
        let cols = 1 + rng.gen_index(7);
        let seed = rng.next_u64() % 500;
        let x = Mat::random(rows, cols, seed);
        let y = Mat::random(rows, cols, seed + 1);
        assert!((ops::frob_dot(&x, &y) - ops::frob_dot(&y, &x)).abs() < 1e-12);
        assert!(ops::frob_dot(&x, &x) >= 0.0);
        assert!((ops::frob_norm(&x).powi(2) - ops::frob_dot(&x, &x)).abs() < 1e-9);
    }
}

/// axpy then axpy(-α) restores the original.
#[test]
fn axpy_is_invertible() {
    let mut rng = Rng::seed_from_u64(0xD005);
    for _ in 0..CASES {
        let rows = 1 + rng.gen_index(14);
        let cols = 1 + rng.gen_index(7);
        let alpha = rng.gen_range_f64(-5.0, 5.0);
        let seed = rng.next_u64() % 500;
        let x = Mat::random(rows, cols, seed);
        let orig = Mat::random(rows, cols, seed + 1);
        let mut y = orig.clone();
        ops::axpy(alpha, &x, &mut y);
        ops::axpy(-alpha, &x, &mut y);
        assert!(ops::max_abs_diff(&y, &orig) < 1e-9);
    }
}

/// set_block/block round-trip at random offsets.
#[test]
fn block_set_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xD006);
    for _ in 0..CASES {
        let rows = 2 + rng.gen_index(14);
        let cols = 2 + rng.gen_index(14);
        let r0 = rng.gen_index(rows);
        let c0 = rng.gen_index(cols);
        let h = (1 + rng.gen_index(15)).min(rows - r0);
        let w = (1 + rng.gen_index(15)).min(cols - c0);
        let seed = rng.next_u64() % 500;
        let mut m = Mat::random(rows, cols, seed);
        let patch = Mat::random(h, w, seed + 2);
        m.set_block(r0, c0, &patch);
        assert_eq!(m.block(r0..r0 + h, c0..c0 + w), patch);
    }
}
