//! Property-based tests for the dense matrix substrate.

use proptest::prelude::*;

use dsk_dense::ops;
use dsk_dense::Mat;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any block decomposition re-stacks to the original matrix.
    #[test]
    fn vstack_inverts_row_blocks(rows in 1usize..40, cols in 1usize..10,
                                 parts in 1usize..6, seed in 0u64..500) {
        let m = Mat::random(rows, cols, seed);
        let mut blocks = Vec::new();
        let mut start = 0;
        for k in 0..parts {
            let len = (rows - start) / (parts - k);
            blocks.push(m.rows_block(start..start + len));
            start += len;
        }
        prop_assert_eq!(Mat::vstack(&blocks), m);
    }

    /// Column splits re-stack horizontally.
    #[test]
    fn hstack_inverts_col_blocks(rows in 1usize..20, cols in 2usize..12,
                                 cut in 1usize..11, seed in 0u64..500) {
        let cut = cut.min(cols - 1);
        let m = Mat::random(rows, cols, seed);
        let left = m.cols_block(0..cut);
        let right = m.cols_block(cut..cols);
        prop_assert_eq!(Mat::hstack(&[left, right]), m);
    }

    /// GEMM respects the transpose identity (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn gemm_transpose_identity(m in 1usize..10, k in 1usize..10, n in 1usize..10,
                               seed in 0u64..500) {
        let a = Mat::random(m, k, seed);
        let b = Mat::random(k, n, seed + 1);
        let mut ab = Mat::zeros(m, n);
        ops::gemm_acc(&mut ab, &a, &b);
        let mut btat = Mat::zeros(n, m);
        ops::gemm_acc(&mut btat, &b.transpose(), &a.transpose());
        prop_assert!(ops::max_abs_diff(&ab.transpose(), &btat) < 1e-10);
    }

    /// The Frobenius inner product is symmetric and positive on the
    /// diagonal.
    #[test]
    fn frob_dot_symmetry(rows in 1usize..15, cols in 1usize..8, seed in 0u64..500) {
        let x = Mat::random(rows, cols, seed);
        let y = Mat::random(rows, cols, seed + 1);
        prop_assert!((ops::frob_dot(&x, &y) - ops::frob_dot(&y, &x)).abs() < 1e-12);
        prop_assert!(ops::frob_dot(&x, &x) >= 0.0);
        prop_assert!((ops::frob_norm(&x).powi(2) - ops::frob_dot(&x, &x)).abs() < 1e-9);
    }

    /// axpy then axpy(-α) restores the original.
    #[test]
    fn axpy_is_invertible(rows in 1usize..15, cols in 1usize..8,
                          alpha in -5.0f64..5.0, seed in 0u64..500) {
        let x = Mat::random(rows, cols, seed);
        let orig = Mat::random(rows, cols, seed + 1);
        let mut y = orig.clone();
        ops::axpy(alpha, &x, &mut y);
        ops::axpy(-alpha, &x, &mut y);
        prop_assert!(ops::max_abs_diff(&y, &orig) < 1e-9);
    }

    /// set_block/block round-trip at random offsets.
    #[test]
    fn block_set_roundtrip(rows in 2usize..16, cols in 2usize..16,
                           r0 in 0usize..15, c0 in 0usize..15,
                           h in 1usize..16, w in 1usize..16, seed in 0u64..500) {
        let r0 = r0 % rows;
        let c0 = c0 % cols;
        let h = h.min(rows - r0);
        let w = w.min(cols - c0);
        let mut m = Mat::random(rows, cols, seed);
        let patch = Mat::random(h, w, seed + 2);
        m.set_block(r0, c0, &patch);
        prop_assert_eq!(m.block(r0..r0 + h, c0..c0 + w), patch);
    }
}
