//! The fused local SDDMM + SpMM kernel (*local kernel fusion*).
//!
//! `FusedMMA(S, A, B) = SpMMA(SDDMM(A, B, S), B)`, computed per nonzero
//! without materializing the intermediate sparse matrix:
//!
//! ```text
//! for each nonzero (i, j) of S:
//!     r        = S_ij · ⟨A_i:, B_j:⟩       (SDDMM part)
//!     out_i:  += r · B_j:                   (SpMM part)
//! ```
//!
//! This is only legal when entire rows of `A` and `B` are co-located —
//! the dot product must complete before the aggregation — which is why
//! the paper restricts local kernel fusion to the 1.5D dense-shifting
//! algorithm. Besides saving a communication round, the fused kernel
//! skips the intermediate store/reload of the SDDMM result (as in the
//! FusedMM paper of Rahman, Sujon & Azad the authors cite).

use dsk_dense::Mat;
use dsk_sparse::CsrMatrix;

/// Fused FusedMMA over full-width rows: `out += SDDMM(A,B,S) · B`
/// row-by-row, without materializing the SDDMM.
///
/// Shapes: `S: m×n` (values = sampling), `a: m×r`, `b: n×r`,
/// `out: m×r`.
pub fn fused_a_csr(out: &mut Mat, s: &CsrMatrix, a: &Mat, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(a.ncols(), b.ncols(), "A and B widths must agree");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B");
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        let arow = a.row(i);
        for (&j, &sv) in cols.iter().zip(vals) {
            let brow = b.row(j as usize);
            let dot: f64 = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            let rij = sv * dot;
            let orow = out.row_mut(i);
            for (o, y) in orow.iter_mut().zip(brow) {
                *o += rij * y;
            }
        }
    }
}

/// Row-parallel variant of [`fused_a_csr`]: output rows are
/// independent (row `i` of `out` only consumes row `i` of `S` and `A`),
/// so contiguous row chunks run on scoped threads.
pub fn par_fused_a_csr(out: &mut Mat, s: &CsrMatrix, a: &Mat, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(a.ncols(), b.ncols(), "A and B widths must agree");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B");
    crate::variants::par_out_rows(out, |i, orow| {
        let (cols, vals) = s.row(i);
        let arow = a.row(i);
        for (&j, &sv) in cols.iter().zip(vals) {
            let brow = b.row(j as usize);
            let dot: f64 = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            let rij = sv * dot;
            for (o, y) in orow.iter_mut().zip(brow) {
                *o += rij * y;
            }
        }
    });
}

/// As [`fused_a_csr`], but additionally materializes the intermediate
/// SDDMM values (in CSR nonzero order) for callers that need the sparse
/// result too.
pub fn fused_a_csr_materialize(out: &mut Mat, s: &CsrMatrix, a: &Mat, b: &Mat) -> Vec<f64> {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(a.ncols(), b.ncols(), "A and B widths must agree");
    let mut rvals = vec![0.0; s.nnz()];
    let indptr = s.indptr();
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        let arow = a.row(i);
        let base = indptr[i];
        for (off, (&j, &sv)) in cols.iter().zip(vals).enumerate() {
            let brow = b.row(j as usize);
            let dot: f64 = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            let rij = sv * dot;
            rvals[base + off] = rij;
            let orow = out.row_mut(i);
            for (o, y) in orow.iter_mut().zip(brow) {
                *o += rij * y;
            }
        }
    }
    rvals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sddmm::sddmm_csr, spmm::spmm_csr_acc};
    use dsk_dense::ops::max_abs_diff;
    use dsk_sparse::gen::erdos_renyi;

    fn setup(m: usize, n: usize, r: usize, seed: u64) -> (CsrMatrix, Mat, Mat) {
        let s = CsrMatrix::from_coo(&erdos_renyi(m, n, 4, seed));
        let a = Mat::random(m, r, seed + 1);
        let b = Mat::random(n, r, seed + 2);
        (s, a, b)
    }

    #[test]
    fn fused_equals_sddmm_then_spmm() {
        let (s, a, b) = setup(15, 12, 7, 20);
        // Unfused path.
        let rvals = sddmm_csr(&s, &a, &b);
        let mut r = s.clone();
        r.set_vals(rvals);
        let mut expect = Mat::zeros(15, 7);
        spmm_csr_acc(&mut expect, &r, &b);
        // Fused path.
        let mut got = Mat::zeros(15, 7);
        fused_a_csr(&mut got, &s, &a, &b);
        assert!(max_abs_diff(&got, &expect) < 1e-12);
    }

    #[test]
    fn materializing_variant_returns_sddmm_values() {
        let (s, a, b) = setup(9, 9, 5, 21);
        let mut out1 = Mat::zeros(9, 5);
        let rvals = fused_a_csr_materialize(&mut out1, &s, &a, &b);
        let expect_vals = sddmm_csr(&s, &a, &b);
        for (g, w) in rvals.iter().zip(&expect_vals) {
            assert!((g - w).abs() < 1e-12);
        }
        let mut out2 = Mat::zeros(9, 5);
        fused_a_csr(&mut out2, &s, &a, &b);
        assert!(max_abs_diff(&out1, &out2) < 1e-12);
    }

    #[test]
    fn fused_accumulates_into_output() {
        let (s, a, b) = setup(6, 6, 3, 22);
        let mut out = Mat::random(6, 3, 99);
        let base = out.clone();
        fused_a_csr(&mut out, &s, &a, &b);
        let mut delta = Mat::zeros(6, 3);
        fused_a_csr(&mut delta, &s, &a, &b);
        let mut expect = base;
        dsk_dense::ops::add_assign(&mut expect, &delta);
        assert!(max_abs_diff(&out, &expect) < 1e-12);
    }
}
