//! # dsk-kernels — shared-memory sparse kernels
//!
//! The local (per-rank / per-node) compute kernels that every distributed
//! algorithm in the workspace calls between communication steps:
//!
//! * [`spmm`] — `out += S·B` and `out += Sᵀ·A` on CSR and COO blocks,
//!   with thread-parallel row variants (the paper uses MKL under OpenMP
//!   for this role);
//! * [`sddmm`] — sampled dense-dense products, including *partial*
//!   accumulation over column slices of the dense operands (the building
//!   block that lets 1.5D sparse-shifting and 2.5D algorithms accumulate
//!   dot products as blocks travel), and the generalized combine used by
//!   graph-attention networks;
//! * [`fused`] — the local FusedMM kernel: SDDMM and SpMM executed
//!   back-to-back on the same operands without materializing the
//!   intermediate sparse matrix (the paper's *local kernel fusion*);
//! * [`variants`] — the local microkernel variant library: every op
//!   above behind the [`LocalKernel`] enum, in naive, register-blocked
//!   (width-specialized unrolled inner loops for r ∈ {8, 16, 32, 64}),
//!   CSB-style tiled (transpose scatter), and thread-parallel forms;
//! * [`tuner`] — the runtime auto-tuner: microbenchmarks the admissible
//!   variants on a staged problem's actual blocks and caches the winner
//!   per (op, shape class, nnz/row, r) — the local half of the
//!   workspace's two-level (distributed plan × local kernel) tuning;
//! * `reference` — naive dense-arithmetic references every kernel is
//!   tested against.
//!
//! All kernels are *local-indexed*: a sparse block's row indices address
//! rows of the `A`-side panel and its column indices address rows of the
//! `B`-side panel directly. Distributed algorithms do the global↔local
//! translation once, when they build their blocks.
//!
//! ## Environment variables
//!
//! * `DSK_THREADS` — thread count for the `par_*` variants (clamped to
//!   ≥ 1; default: one per available core). Pin it on shared CI runners
//!   so variant timings — and therefore tuner picks — are deterministic.
//! * `DSK_LOCAL_KERNEL` — pin every tuner pick to one variant label
//!   (`naive`, `blocked`, `tiled`, `par-naive`, `par-blocked`,
//!   `par-tiled`), clamped per op to the admissible set. Unrecognized
//!   values are ignored.

// Indexed `for i in 0..n` loops over CSR index structures are the
// domain idiom throughout this workspace; the iterator rewrites
// clippy suggests obscure the sparse-index arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod fused;
pub mod reference;
pub mod sddmm;
pub mod spmm;
pub mod tuner;
pub mod variants;

pub use fused::{fused_a_csr, fused_a_csr_materialize, par_fused_a_csr};
pub use sddmm::{
    apply_sampling, leaky_relu, par_sddmm_csr_acc, par_sddmm_csr_acc_with, sddmm_coo_acc,
    sddmm_csr, sddmm_csr_acc, SddmmCombine,
};
pub use spmm::{par_spmm_csr_acc, spmm_coo_acc, spmm_coo_t_acc, spmm_csr_acc, spmm_csr_t_acc};
pub use tuner::{LocalPicks, LocalTuning, TuneRequest};
pub use variants::{LocalKernel, LocalOp, SparseFormat};

/// Flops of `out += S·B` with `nnz` nonzeros and `r`-wide dense rows:
/// one multiply and one add per (nonzero, column).
pub fn spmm_flops(nnz: usize, r: usize) -> u64 {
    2 * nnz as u64 * r as u64
}

/// Flops of an SDDMM with `nnz` nonzeros and `r`-wide rows: a length-`r`
/// dot product per nonzero plus the sampling multiply.
pub fn sddmm_flops(nnz: usize, r: usize) -> u64 {
    2 * nnz as u64 * r as u64 + nnz as u64
}

/// Flops of the fused local kernel (SDDMM followed by SpMM on the same
/// nonzeros).
pub fn fused_flops(nnz: usize, r: usize) -> u64 {
    sddmm_flops(nnz, r) + spmm_flops(nnz, r)
}
