//! Naive reference implementations used to validate every optimized
//! kernel and every distributed algorithm.
//!
//! These go through dense arithmetic or direct triplet iteration with no
//! regard for performance; their only job is to be obviously correct.

use dsk_dense::ops::row_dot;
use dsk_dense::Mat;
use dsk_sparse::{CooMatrix, CsrMatrix};

/// Reference `out += S·B` by direct triplet iteration.
pub fn spmm_ref_acc(out: &mut Mat, s: &CooMatrix, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows);
    assert_eq!(b.nrows(), s.ncols);
    for (i, j, v) in s.iter() {
        for k in 0..b.ncols() {
            out.set(i, k, out.get(i, k) + v * b.get(j, k));
        }
    }
}

/// Reference `out += Sᵀ·A` by direct triplet iteration.
pub fn spmm_t_ref_acc(out: &mut Mat, s: &CooMatrix, a: &Mat) {
    assert_eq!(out.nrows(), s.ncols);
    assert_eq!(a.nrows(), s.nrows);
    for (i, j, v) in s.iter() {
        for k in 0..a.ncols() {
            out.set(j, k, out.get(j, k) + v * a.get(i, k));
        }
    }
}

/// Reference SDDMM returning values in the CSR nonzero order of `s`.
pub fn sddmm_ref(s: &CsrMatrix, a: &Mat, b: &Mat) -> Vec<f64> {
    let mut out = Vec::with_capacity(s.nnz());
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        for (&j, &sv) in cols.iter().zip(vals) {
            out.push(sv * row_dot(a, i, b, j as usize));
        }
    }
    out
}

/// Reference FusedMMA: `SpMMA(SDDMM(A,B,S), B)` as a dense matrix.
pub fn fused_a_ref(s: &CsrMatrix, a: &Mat, b: &Mat) -> Mat {
    let rvals = sddmm_ref(s, a, b);
    let mut r = s.clone();
    r.set_vals(rvals);
    let mut out = Mat::zeros(s.nrows(), b.ncols());
    for i in 0..r.nrows() {
        let (cols, vals) = r.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            for k in 0..b.ncols() {
                out.set(i, k, out.get(i, k) + v * b.get(j as usize, k));
            }
        }
    }
    out
}

/// Reference FusedMMB: `SpMMB(SDDMM(A,B,S), A) = Rᵀ·A` as a dense matrix.
pub fn fused_b_ref(s: &CsrMatrix, a: &Mat, b: &Mat) -> Mat {
    let rvals = sddmm_ref(s, a, b);
    let mut r = s.clone();
    r.set_vals(rvals);
    let mut out = Mat::zeros(s.ncols(), a.ncols());
    for i in 0..r.nrows() {
        let (cols, vals) = r.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            for k in 0..a.ncols() {
                out.set(j as usize, k, out.get(j as usize, k) + v * a.get(i, k));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsk_dense::ops::{gemm_abt_acc, max_abs_diff};
    use dsk_sparse::gen::erdos_renyi;

    #[test]
    fn sddmm_ref_agrees_with_dense_mask() {
        // SDDMM == S ∗ (A·Bᵀ) computed densely.
        let coo = erdos_renyi(7, 8, 3, 30);
        let s = CsrMatrix::from_coo(&coo);
        let a = Mat::random(7, 4, 31);
        let b = Mat::random(8, 4, 32);
        let mut abt = Mat::zeros(7, 8);
        gemm_abt_acc(&mut abt, &a, &b);
        let vals = sddmm_ref(&s, &a, &b);
        let rcoo = {
            let mut r = s.clone();
            r.set_vals(vals);
            r.to_coo()
        };
        for (i, j, v) in rcoo.iter() {
            let sval = s
                .row(i)
                .0
                .iter()
                .zip(s.row(i).1)
                .find(|(&c, _)| c as usize == j)
                .map(|(_, &sv)| sv)
                .unwrap();
            assert!((v - sval * abt.get(i, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_refs_compose_kernels() {
        let coo = erdos_renyi(6, 5, 2, 33);
        let s = CsrMatrix::from_coo(&coo);
        let a = Mat::random(6, 3, 34);
        let b = Mat::random(5, 3, 35);
        let fa = fused_a_ref(&s, &a, &b);
        // FusedMMA output shape: like A.
        assert_eq!(fa.nrows(), 6);
        assert_eq!(fa.ncols(), 3);
        let fb = fused_b_ref(&s, &a, &b);
        // FusedMMB output shape: like B.
        assert_eq!(fb.nrows(), 5);
        assert_eq!(fb.ncols(), 3);
        // FusedMMB(S,A,B) == FusedMMA(Sᵀ,B,A): check via transposed input.
        let st = CsrMatrix::from_coo(&coo.transpose());
        let fa_of_t = fused_a_ref(&st, &b, &a);
        assert!(max_abs_diff(&fb, &fa_of_t) < 1e-12);
    }

    #[test]
    fn spmm_refs_are_transpose_consistent() {
        let coo = erdos_renyi(5, 9, 2, 36);
        let a = Mat::random(5, 4, 37);
        let mut o1 = Mat::zeros(9, 4);
        spmm_t_ref_acc(&mut o1, &coo, &a);
        let mut o2 = Mat::zeros(9, 4);
        spmm_ref_acc(&mut o2, &coo.transpose(), &a);
        assert!(max_abs_diff(&o1, &o2) < 1e-12);
    }
}
