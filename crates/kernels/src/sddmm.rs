//! Sampled dense-dense matrix multiplication kernels.
//!
//! `SDDMM(A, B, S) = S ∗ (A·Bᵀ)`: for every nonzero `(i, j)` of `S`,
//! compute `⟨A_i:, B_j:⟩` and multiply by `S_ij`. The kernels here
//! separate the two parts:
//!
//! 1. **accumulation** of the dense dot products into a value buffer
//!    aligned with the sparse pattern — crucially, this may be *partial*:
//!    when the dense operands are column slices (1.5D sparse-shifting and
//!    both 2.5D algorithms), each call adds that slice's contribution and
//!    the full dot product emerges after all slices have been visited;
//! 2. **finalization**: multiplying by the sampling values
//!    ([`apply_sampling`]) or applying a nonlinearity ([`leaky_relu`],
//!    used by graph attention networks).
//!
//! The [`SddmmCombine`] enum generalizes the per-nonzero interaction: the
//! paper's GAT workload replaces the dot product with
//! `aᵀ(A_i: ‖ A_j:) = Σ_k w_src[k]·A_ik + w_dst[k]·A_jk`, which is also a
//! sum over the r-dimension and therefore slices identically.

use dsk_dense::Mat;
use dsk_sparse::{CooMatrix, CsrMatrix};

/// Per-nonzero interaction between a row of the A-side panel and a row
/// of the B-side panel. Every variant decomposes as a sum over the
/// panel's columns, so slice-partial accumulation is exact.
#[derive(Clone, Copy)]
pub enum SddmmCombine<'a> {
    /// `⟨a_row, b_row⟩` — the standard SDDMM.
    Dot,
    /// `Σ_k w_src[k]·a_row[k] + w_dst[k]·b_row[k]` — the additive
    /// attention logit of a GAT head. The weight slices must have the
    /// same width as the panels.
    AffinePair {
        /// Weights applied to the A-side (source embedding).
        w_src: &'a [f64],
        /// Weights applied to the B-side (destination embedding).
        w_dst: &'a [f64],
    },
}

impl SddmmCombine<'_> {
    #[inline]
    fn eval(&self, arow: &[f64], brow: &[f64]) -> f64 {
        match self {
            SddmmCombine::Dot => arow.iter().zip(brow).map(|(x, y)| x * y).sum(),
            SddmmCombine::AffinePair { w_src, w_dst } => {
                debug_assert_eq!(w_src.len(), arow.len());
                debug_assert_eq!(w_dst.len(), brow.len());
                let s: f64 = w_src.iter().zip(arow).map(|(w, x)| w * x).sum();
                let d: f64 = w_dst.iter().zip(brow).map(|(w, y)| w * y).sum();
                s + d
            }
        }
    }
}

/// Accumulate (partial) dot products into `acc`, aligned with the CSR
/// nonzero order of `s`: `acc[k] += combine(A_row(i_k), B_row(j_k))`.
/// Panels may be column slices of the global matrices.
pub fn sddmm_csr_acc_with(
    acc: &mut [f64],
    s: &CsrMatrix,
    a_panel: &Mat,
    b_panel: &Mat,
    combine: SddmmCombine<'_>,
) {
    assert_eq!(acc.len(), s.nnz(), "accumulator must align with pattern");
    assert_eq!(a_panel.nrows(), s.nrows(), "A panel rows must match S rows");
    assert_eq!(b_panel.nrows(), s.ncols(), "B panel rows must match S cols");
    assert_eq!(
        a_panel.ncols(),
        b_panel.ncols(),
        "panels must cover the same column slice"
    );
    let indptr = s.indptr();
    for i in 0..s.nrows() {
        let (cols, _) = s.row(i);
        let arow = a_panel.row(i);
        let base = indptr[i];
        for (off, &j) in cols.iter().enumerate() {
            acc[base + off] += combine.eval(arow, b_panel.row(j as usize));
        }
    }
}

/// [`sddmm_csr_acc_with`] specialized to the dot-product combine.
pub fn sddmm_csr_acc(acc: &mut [f64], s: &CsrMatrix, a_panel: &Mat, b_panel: &Mat) {
    sddmm_csr_acc_with(acc, s, a_panel, b_panel, SddmmCombine::Dot);
}

/// Row-parallel variant of [`sddmm_csr_acc_with`]: rows of `s` own
/// disjoint ranges of `acc`, so the accumulator splits at row
/// boundaries.
pub fn par_sddmm_csr_acc_with(
    acc: &mut [f64],
    s: &CsrMatrix,
    a_panel: &Mat,
    b_panel: &Mat,
    combine: SddmmCombine<'_>,
) {
    assert_eq!(acc.len(), s.nnz(), "accumulator must align with pattern");
    assert_eq!(a_panel.nrows(), s.nrows(), "A panel rows must match S rows");
    assert_eq!(b_panel.nrows(), s.ncols(), "B panel rows must match S cols");
    assert_eq!(
        a_panel.ncols(),
        b_panel.ncols(),
        "panels must cover the same column slice"
    );
    let indptr = s.indptr();
    // Cut rows into contiguous chunks and hand each its slice of acc.
    let nchunks = crate::spmm::par_threads().max(1);
    let rows_per_chunk = s.nrows().div_ceil(nchunks).max(1);
    let mut jobs: Vec<(usize, usize, &mut [f64])> = Vec::new();
    let mut rest = acc;
    let mut consumed = 0usize;
    let mut row0 = 0usize;
    while row0 < s.nrows() {
        let row1 = (row0 + rows_per_chunk).min(s.nrows());
        let end = indptr[row1];
        let (chunk, tail) = rest.split_at_mut(end - consumed);
        jobs.push((row0, row1, chunk));
        rest = tail;
        consumed = end;
        row0 = row1;
    }
    std::thread::scope(|scope| {
        for (r0, r1, chunk) in jobs {
            scope.spawn(move || {
                let base = indptr[r0];
                for i in r0..r1 {
                    let (cols, _) = s.row(i);
                    let arow = a_panel.row(i);
                    let start = indptr[i] - base;
                    for (off, &j) in cols.iter().enumerate() {
                        chunk[start + off] += combine.eval(arow, b_panel.row(j as usize));
                    }
                }
            });
        }
    });
}

/// [`par_sddmm_csr_acc_with`] specialized to the dot-product combine.
pub fn par_sddmm_csr_acc(acc: &mut [f64], s: &CsrMatrix, a_panel: &Mat, b_panel: &Mat) {
    par_sddmm_csr_acc_with(acc, s, a_panel, b_panel, SddmmCombine::Dot);
}

/// Accumulate (partial) dot products aligned with a COO block's nonzero
/// order: `acc[k] += combine(A_row(rows[k]), B_row(cols[k]))`.
///
/// Only the coordinate arrays of `s` are consulted (its value array may
/// be detached — traveling blocks in the sparse-shifting algorithms
/// carry their accumulator separately).
pub fn sddmm_coo_acc_with(
    acc: &mut [f64],
    s: &CooMatrix,
    a_panel: &Mat,
    b_panel: &Mat,
    combine: SddmmCombine<'_>,
) {
    assert_eq!(
        acc.len(),
        s.rows.len(),
        "accumulator must align with pattern"
    );
    assert_eq!(a_panel.nrows(), s.nrows, "A panel rows must match S rows");
    assert_eq!(b_panel.nrows(), s.ncols, "B panel rows must match S cols");
    assert_eq!(
        a_panel.ncols(),
        b_panel.ncols(),
        "panels must cover the same column slice"
    );
    for (k, (&i, &j)) in s.rows.iter().zip(&s.cols).enumerate() {
        acc[k] += combine.eval(a_panel.row(i as usize), b_panel.row(j as usize));
    }
}

/// [`sddmm_coo_acc_with`] with the dot-product combine.
pub fn sddmm_coo_acc(acc: &mut [f64], s: &CooMatrix, a_panel: &Mat, b_panel: &Mat) {
    sddmm_coo_acc_with(acc, s, a_panel, b_panel, SddmmCombine::Dot);
}

/// Full (non-distributed) SDDMM on a CSR pattern: returns
/// `S_ij · ⟨A_i:, B_j:⟩` in CSR nonzero order.
pub fn sddmm_csr(s: &CsrMatrix, a: &Mat, b: &Mat) -> Vec<f64> {
    let mut acc = vec![0.0; s.nnz()];
    sddmm_csr_acc(&mut acc, s, a, b);
    apply_sampling(&mut acc, s.vals());
    acc
}

/// Finalize an SDDMM: multiply accumulated dot products by the sampling
/// values (the original entries of `S`), element-wise.
pub fn apply_sampling(acc: &mut [f64], sampling: &[f64]) {
    assert_eq!(acc.len(), sampling.len(), "sampling length mismatch");
    for (a, s) in acc.iter_mut().zip(sampling) {
        *a *= s;
    }
}

/// LeakyReLU with the GAT paper's default negative slope (0.2), applied
/// element-wise — the nonlinearity between a GAT's attention logits and
/// its softmax.
pub fn leaky_relu(vals: &mut [f64], negative_slope: f64) {
    for v in vals.iter_mut() {
        if *v < 0.0 {
            *v *= negative_slope;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use dsk_sparse::gen::erdos_renyi;

    fn setup(m: usize, n: usize, r: usize, seed: u64) -> (CooMatrix, Mat, Mat) {
        let s = erdos_renyi(m, n, 3, seed);
        let a = Mat::random(m, r, seed + 1);
        let b = Mat::random(n, r, seed + 2);
        (s, a, b)
    }

    #[test]
    fn sddmm_matches_reference() {
        let (s, a, b) = setup(11, 13, 6, 10);
        let csr = CsrMatrix::from_coo(&s);
        let got = sddmm_csr(&csr, &a, &b);
        let want = reference::sddmm_ref(&csr, &a, &b);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn par_sddmm_matches_serial() {
        let (s, a, b) = setup(64, 64, 8, 11);
        let csr = CsrMatrix::from_coo(&s);
        let mut acc1 = vec![0.0; csr.nnz()];
        let mut acc2 = vec![0.0; csr.nnz()];
        sddmm_csr_acc(&mut acc1, &csr, &a, &b);
        par_sddmm_csr_acc(&mut acc2, &csr, &a, &b);
        for (x, y) in acc1.iter().zip(&acc2) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn slice_partial_accumulation_is_exact() {
        // Accumulating over column slices must equal the full-width dot.
        let (s, a, b) = setup(9, 9, 12, 12);
        let csr = CsrMatrix::from_coo(&s);
        let mut full = vec![0.0; csr.nnz()];
        sddmm_csr_acc(&mut full, &csr, &a, &b);

        let mut sliced = vec![0.0; csr.nnz()];
        for slice in [0..5usize, 5..12usize] {
            let ap = a.cols_block(slice.clone());
            let bp = b.cols_block(slice.clone());
            sddmm_csr_acc(&mut sliced, &csr, &ap, &bp);
        }
        for (x, y) in full.iter().zip(&sliced) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn coo_and_csr_accumulators_agree() {
        let (s, a, b) = setup(8, 10, 4, 13);
        let csr = CsrMatrix::from_coo(&s);
        // Same pattern in both formats: compare via sorted COO order.
        let coo_sorted = csr.to_coo();
        let mut acc_coo = vec![0.0; coo_sorted.nnz()];
        sddmm_coo_acc(&mut acc_coo, &coo_sorted, &a, &b);
        let mut acc_csr = vec![0.0; csr.nnz()];
        sddmm_csr_acc(&mut acc_csr, &csr, &a, &b);
        for (x, y) in acc_coo.iter().zip(&acc_csr) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn affine_pair_combine_matches_manual() {
        let (s, a, b) = setup(6, 6, 5, 14);
        let csr = CsrMatrix::from_coo(&s);
        let w_src: Vec<f64> = (0..5).map(|k| 0.1 * k as f64).collect();
        let w_dst: Vec<f64> = (0..5).map(|k| 1.0 - 0.2 * k as f64).collect();
        let mut acc = vec![0.0; csr.nnz()];
        sddmm_csr_acc_with(
            &mut acc,
            &csr,
            &a,
            &b,
            SddmmCombine::AffinePair {
                w_src: &w_src,
                w_dst: &w_dst,
            },
        );
        // manual check
        let coo = csr.to_coo();
        for (k, (i, j, _)) in coo.iter().enumerate() {
            let want: f64 = (0..5)
                .map(|t| w_src[t] * a.get(i, t) + w_dst[t] * b.get(j, t))
                .sum();
            assert!((acc[k] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_sampling_multiplies_elementwise() {
        let mut acc = vec![2.0, 3.0, 4.0];
        apply_sampling(&mut acc, &[1.0, 0.5, -1.0]);
        assert_eq!(acc, vec![2.0, 1.5, -4.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives_only() {
        let mut v = vec![-1.0, 0.0, 2.0];
        leaky_relu(&mut v, 0.2);
        assert_eq!(v, vec![-0.2, 0.0, 2.0]);
    }
}
