//! Sparse-times-dense multiplication kernels.
//!
//! `SpMMA`-style kernels compute `out += S·B` (output shaped like the
//! sparse operand's rows); `SpMMB`-style compute `out += Sᵀ·A`. Both are
//! provided over CSR (stationary blocks, reused across steps) and COO
//! (blocks that just arrived over the wire).

use dsk_dense::Mat;
use dsk_sparse::{CooMatrix, CsrMatrix};

/// Threads used by the `par_*` kernel variants: the `DSK_THREADS`
/// environment variable when set (clamped to ≥ 1, for deterministic
/// variant timings on shared runners), one per available core otherwise.
pub(crate) fn par_threads() -> usize {
    match std::env::var("DSK_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

/// `out += S·B`. Shapes: `S: m×n`, `B: n×r`, `out: m×r`.
pub fn spmm_csr_acc(out: &mut Mat, s: &CsrMatrix, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B width");
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        let orow = out.row_mut(i);
        for (&j, &v) in cols.iter().zip(vals) {
            let brow = b.row(j as usize);
            for (o, x) in orow.iter_mut().zip(brow) {
                *o += v * x;
            }
        }
    }
}

/// Row-parallel `out += S·B` (scoped threads). Output rows are
/// independent, so contiguous row chunks of `S` are processed in
/// parallel, one chunk per thread.
pub fn par_spmm_csr_acc(out: &mut Mat, s: &CsrMatrix, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B width");
    let r = out.ncols();
    let nrows = s.nrows();
    let nthreads = par_threads().min(nrows.max(1));
    let rows_per = nrows.div_ceil(nthreads.max(1)).max(1);
    let chunks: Vec<(usize, &mut [f64])> = out
        .as_mut_slice()
        .chunks_mut(rows_per * r.max(1))
        .enumerate()
        .map(|(k, chunk)| (k * rows_per, chunk))
        .collect();
    std::thread::scope(|scope| {
        for (row0, chunk) in chunks {
            scope.spawn(move || {
                let nchunk = chunk.len().checked_div(r).unwrap_or(0);
                for (di, orow) in chunk.chunks_mut(r.max(1)).enumerate().take(nchunk) {
                    let (cols, vals) = s.row(row0 + di);
                    for (&j, &v) in cols.iter().zip(vals) {
                        let brow = b.row(j as usize);
                        for (o, x) in orow.iter_mut().zip(brow) {
                            *o += v * x;
                        }
                    }
                }
            });
        }
    });
}

/// `out += Sᵀ·A`. Shapes: `S: m×n`, `A: m×r`, `out: n×r`. Row-scatter
/// over the CSR rows (serial: output rows collide across input rows).
pub fn spmm_csr_t_acc(out: &mut Mat, s: &CsrMatrix, a: &Mat) {
    assert_eq!(out.nrows(), s.ncols(), "output rows must match S cols");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(out.ncols(), a.ncols(), "output width must match A width");
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        let arow = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            let orow = out.row_mut(j as usize);
            for (o, x) in orow.iter_mut().zip(arow) {
                *o += v * x;
            }
        }
    }
}

/// `out += S·B` over a COO block (used for blocks that just arrived over
/// the wire, where building CSR first would cost more than the kernel).
pub fn spmm_coo_acc(out: &mut Mat, s: &CooMatrix, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows, "output rows must match S rows");
    assert_eq!(b.nrows(), s.ncols, "B rows must match S cols");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B width");
    for (i, j, v) in s.iter() {
        let brow = b.row(j);
        let orow = out.row_mut(i);
        for (o, x) in orow.iter_mut().zip(brow) {
            *o += v * x;
        }
    }
}

/// `out += Sᵀ·A` over a COO block.
pub fn spmm_coo_t_acc(out: &mut Mat, s: &CooMatrix, a: &Mat) {
    assert_eq!(out.nrows(), s.ncols, "output rows must match S cols");
    assert_eq!(a.nrows(), s.nrows, "A rows must match S rows");
    assert_eq!(out.ncols(), a.ncols(), "output width must match A width");
    for (i, j, v) in s.iter() {
        let arow = a.row(i);
        let orow = out.row_mut(j);
        for (o, x) in orow.iter_mut().zip(arow) {
            *o += v * x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use dsk_dense::ops::max_abs_diff;
    use dsk_sparse::gen::erdos_renyi;

    fn setup(m: usize, n: usize, r: usize, nnz_row: usize, seed: u64) -> (CooMatrix, Mat, Mat) {
        let s = erdos_renyi(m, n, nnz_row, seed);
        let a = Mat::random(m, r, seed + 1);
        let b = Mat::random(n, r, seed + 2);
        (s, a, b)
    }

    #[test]
    fn csr_spmm_matches_reference() {
        let (s, _, b) = setup(13, 17, 5, 4, 1);
        let csr = CsrMatrix::from_coo(&s);
        let mut out = Mat::random(13, 5, 9);
        let mut expect = out.clone();
        spmm_csr_acc(&mut out, &csr, &b);
        reference::spmm_ref_acc(&mut expect, &s, &b);
        assert!(max_abs_diff(&out, &expect) < 1e-12);
    }

    #[test]
    fn par_spmm_matches_serial() {
        let (s, _, b) = setup(64, 64, 8, 6, 2);
        let csr = CsrMatrix::from_coo(&s);
        let mut serial = Mat::zeros(64, 8);
        let mut parallel = Mat::zeros(64, 8);
        spmm_csr_acc(&mut serial, &csr, &b);
        par_spmm_csr_acc(&mut parallel, &csr, &b);
        assert!(max_abs_diff(&serial, &parallel) < 1e-12);
    }

    #[test]
    fn csr_spmm_t_matches_transposed_spmm() {
        let (s, a, _) = setup(12, 9, 4, 3, 3);
        let csr = CsrMatrix::from_coo(&s);
        let mut out1 = Mat::zeros(9, 4);
        spmm_csr_t_acc(&mut out1, &csr, &a);
        let mut out2 = Mat::zeros(9, 4);
        spmm_csr_acc(&mut out2, &csr.transpose(), &a);
        assert!(max_abs_diff(&out1, &out2) < 1e-12);
    }

    #[test]
    fn coo_kernels_match_csr_kernels() {
        let (s, a, b) = setup(10, 14, 6, 4, 4);
        let csr = CsrMatrix::from_coo(&s);
        let mut c1 = Mat::zeros(10, 6);
        let mut c2 = Mat::zeros(10, 6);
        spmm_coo_acc(&mut c1, &s, &b);
        spmm_csr_acc(&mut c2, &csr, &b);
        assert!(max_abs_diff(&c1, &c2) < 1e-12);

        let mut t1 = Mat::zeros(14, 6);
        let mut t2 = Mat::zeros(14, 6);
        spmm_coo_t_acc(&mut t1, &s, &a);
        spmm_csr_t_acc(&mut t2, &csr, &a);
        assert!(max_abs_diff(&t1, &t2) < 1e-12);
    }

    #[test]
    fn accumulation_adds_to_existing_output() {
        let (s, _, b) = setup(6, 6, 3, 2, 5);
        let csr = CsrMatrix::from_coo(&s);
        let mut out = Mat::zeros(6, 3);
        spmm_csr_acc(&mut out, &csr, &b);
        let once = out.clone();
        spmm_csr_acc(&mut out, &csr, &b);
        let mut twice = once.clone();
        dsk_dense::ops::add_assign(&mut twice, &once);
        assert!(max_abs_diff(&out, &twice) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "B rows must match S cols")]
    fn shape_mismatch_is_rejected() {
        let (s, _, _) = setup(4, 6, 2, 2, 6);
        let csr = CsrMatrix::from_coo(&s);
        let b_bad = Mat::zeros(5, 2);
        let mut out = Mat::zeros(4, 2);
        spmm_csr_acc(&mut out, &csr, &b_bad);
    }
}
