//! Runtime auto-tuner for the local microkernel variants.
//!
//! The distributed planner already auto-tunes the *outer* decision
//! (algorithm, replication factor, routing); [`LocalTuning`] adds the
//! inner one. For each (op, format, shape class) it microbenchmarks the
//! admissible [`LocalKernel`] variants **on the staged problem's actual
//! sparse blocks** (capped to a row prefix so tuning stays cheap) and
//! caches the winner, keyed by a coarse shape class — log₂ buckets of
//! the block's row count and nnz/row plus the exact dense width `r` —
//! so one measurement serves every block of the same shape class.
//!
//! The tuner is deliberately **communication-free**: it never touches a
//! `Comm` handle, performs no collectives, and records no modeled
//! flops, so modeled word/message/compute counts are bit-identical
//! whatever variant wins. Callers account its wall time in a dedicated
//! phase bucket instead.
//!
//! Picks can be pinned for reproducible benches: programmatically via
//! [`LocalTuning::set_pin`], or with the `DSK_LOCAL_KERNEL` environment
//! variable (any [`LocalKernel::label`], e.g. `blocked`). A pin wins
//! over both the cache and fresh measurement, clamped per op to the
//! admissible set.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use dsk_dense::Mat;
use dsk_sparse::{CooMatrix, CsrMatrix};

use crate::sddmm::SddmmCombine;
use crate::variants::{LocalKernel, LocalOp, SparseFormat};

/// Cap on the nonzeros a tuning measurement runs over: blocks larger
/// than this are truncated to a row prefix (CSR) / entry prefix (COO).
const TUNE_NNZ_CAP: usize = 1 << 15;

/// Timed repetitions per variant (plus one warm-up); the minimum is
/// scored, which rejects scheduler noise better than the mean.
const TUNE_REPS: usize = 3;

/// What a caller wants tuned: one local op on blocks of a given shape
/// class. `rows`/`nnz` describe the blocks the pick will serve (the
/// planner passes per-rank estimates so cache keys match at both tune
/// time and plan time); `r` is the dense operand width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuneRequest {
    /// The local kernel op.
    pub op: LocalOp,
    /// Storage format of the sparse blocks.
    pub format: SparseFormat,
    /// Rows of a representative sparse block.
    pub rows: usize,
    /// Nonzeros of a representative sparse block.
    pub nnz: usize,
    /// Dense operand width (embedding dimension).
    pub r: usize,
}

/// Cache key: shape classes, not exact shapes — log₂ buckets of the row
/// count and of nnz/row, exact `r` (the unroll width specializes on it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct TuneKey {
    op: LocalOp,
    format: SparseFormat,
    rows_log2: u32,
    nnz_per_row_log2: u32,
    r: usize,
}

impl TuneKey {
    fn of(req: TuneRequest) -> TuneKey {
        let nnz_per_row = req.nnz / req.rows.max(1);
        TuneKey {
            op: req.op,
            format: req.format,
            rows_log2: req.rows.max(1).ilog2(),
            nnz_per_row_log2: nnz_per_row.max(1).ilog2(),
            r: req.r,
        }
    }
}

/// The variants a distributed kernel family resolved for its four local
/// ops. `Default` is all-[`LocalKernel::Naive`] (the pre-tuning
/// behavior).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalPicks {
    /// Variant for `out += S·B`.
    pub spmm: LocalKernel,
    /// Variant for the transpose scatter `out += Sᵀ·A`.
    pub spmm_t: LocalKernel,
    /// Variant for SDDMM accumulation.
    pub sddmm: LocalKernel,
    /// Variant for the fused SDDMM+SpMM kernel.
    pub fused: LocalKernel,
}

impl LocalPicks {
    /// The pick for `op`.
    pub fn get(&self, op: LocalOp) -> LocalKernel {
        match op {
            LocalOp::Spmm => self.spmm,
            LocalOp::SpmmT => self.spmm_t,
            LocalOp::Sddmm => self.sddmm,
            LocalOp::Fused => self.fused,
        }
    }
}

/// Per-problem cache of tuned local-kernel picks, shared by every
/// distributed plan built from the same staged problem (the local
/// analogue of the staged partition/pattern caches).
#[derive(Debug, Default)]
pub struct LocalTuning {
    cache: Mutex<HashMap<TuneKey, LocalKernel>>,
    pin: Mutex<Option<LocalKernel>>,
}

impl LocalTuning {
    /// An empty cache with no programmatic pin.
    pub fn new() -> LocalTuning {
        LocalTuning::default()
    }

    /// Pin every pick to `v` (or clear the pin with `None`). A
    /// programmatic pin takes precedence over `DSK_LOCAL_KERNEL`.
    pub fn set_pin(&self, v: Option<LocalKernel>) {
        *self.pin.lock().unwrap() = v;
    }

    /// The active pin: the programmatic one if set, else a parseable
    /// `DSK_LOCAL_KERNEL` value.
    pub fn pinned(&self) -> Option<LocalKernel> {
        if let Some(v) = *self.pin.lock().unwrap() {
            return Some(v);
        }
        std::env::var("DSK_LOCAL_KERNEL")
            .ok()
            .and_then(|s| LocalKernel::parse(&s))
    }

    /// The cached pick for `req`'s shape class, if any (pin applied
    /// first). Never measures.
    pub fn cached(&self, req: TuneRequest) -> Option<LocalKernel> {
        if let Some(p) = self.pinned() {
            return Some(p.clamp(req.op, req.format));
        }
        self.cache
            .lock()
            .unwrap()
            .get(&TuneKey::of(req))
            .map(|v| v.clamp(req.op, req.format))
    }

    /// Resolve a pick without measuring: pin, else cache, else the
    /// shape heuristic. This is what world-free planning (`plan_candidates`)
    /// uses — it must stay cheap enough for an 81-point sweep.
    pub fn resolve(&self, req: TuneRequest) -> LocalKernel {
        self.cached(req).unwrap_or_else(|| heuristic(req))
    }

    /// Tune `req.op` on a representative CSR block: microbenchmark every
    /// admissible variant on (a row-prefix cap of) `block` and cache the
    /// fastest. Pin and cache short-circuit the measurement. The cache
    /// lock is held across the measurement so concurrent in-process
    /// ranks serialize instead of perturbing each other's timings.
    pub fn tune_csr(&self, req: TuneRequest, block: &CsrMatrix) -> LocalKernel {
        if let Some(p) = self.pinned() {
            return p.clamp(req.op, req.format);
        }
        let key = TuneKey::of(req);
        let mut cache = self.cache.lock().unwrap();
        if let Some(&v) = cache.get(&key) {
            return v.clamp(req.op, req.format);
        }
        let pick = if block.nrows() == 0 || block.nnz() == 0 || req.r == 0 {
            heuristic(req)
        } else {
            let start = Instant::now();
            let pick = measure_csr(req.op, block, req.r);
            trace_measurement(req, pick, start);
            pick
        };
        cache.insert(key, pick);
        pick
    }

    /// As [`LocalTuning::tune_csr`], on a representative COO block.
    pub fn tune_coo(&self, req: TuneRequest, block: &CooMatrix) -> LocalKernel {
        if let Some(p) = self.pinned() {
            return p.clamp(req.op, req.format);
        }
        let key = TuneKey::of(req);
        let mut cache = self.cache.lock().unwrap();
        if let Some(&v) = cache.get(&key) {
            return v.clamp(req.op, req.format);
        }
        let pick = if block.nrows == 0 || block.nnz() == 0 || req.r == 0 {
            heuristic(req)
        } else {
            let start = Instant::now();
            let pick = measure_coo(req.op, block, req.r);
            trace_measurement(req, pick, start);
            pick
        };
        cache.insert(key, pick);
        pick
    }
}

/// Record a `tune.measure` span covering one microbenchmark sweep. The
/// tuner stays communication-free: this reads the clock for the span
/// but touches no `Comm` state or modeled counters.
fn trace_measurement(req: TuneRequest, pick: LocalKernel, start: Instant) {
    use dsk_comm::trace::{self, ArgVal, TraceKind};
    trace::complete(TraceKind::Tune, "tune.measure", start, || {
        vec![
            ("op".to_string(), ArgVal::Str(format!("{:?}", req.op))),
            (
                "format".to_string(),
                ArgVal::Str(format!("{:?}", req.format)),
            ),
            ("variant".to_string(), ArgVal::Str(pick.label().to_string())),
        ]
    });
}

/// The measurement-free default pick, used for empty blocks and by
/// world-free planning before any measurement exists: serial blocking
/// pays off once the row width covers a register block; the transpose
/// scatter prefers the cache-tiled layout; COO blocks are consumed once
/// and stay naive.
fn heuristic(req: TuneRequest) -> LocalKernel {
    let guess = match req.format {
        SparseFormat::Coo => LocalKernel::Naive,
        SparseFormat::Csr => match req.op {
            LocalOp::SpmmT => LocalKernel::Tiled,
            _ if req.r >= 8 => LocalKernel::Blocked,
            _ => LocalKernel::Naive,
        },
    };
    guess.clamp(req.op, req.format)
}

/// Truncate a CSR block to the row prefix holding at most
/// [`TUNE_NNZ_CAP`] nonzeros (always at least one row).
fn cap_csr(block: &CsrMatrix) -> CsrMatrix {
    if block.nnz() <= TUNE_NNZ_CAP {
        return block.clone();
    }
    let indptr = block.indptr();
    let mut rows = 1;
    while rows < block.nrows() && indptr[rows + 1] <= TUNE_NNZ_CAP {
        rows += 1;
    }
    let mut coo = CooMatrix::empty(rows, block.ncols());
    for i in 0..rows {
        let (cols, vals) = block.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            coo.push(i, j as usize, v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Truncate a COO block to its first [`TUNE_NNZ_CAP`] entries.
fn cap_coo(block: &CooMatrix) -> CooMatrix {
    if block.nnz() <= TUNE_NNZ_CAP {
        return block.clone();
    }
    let mut capped = CooMatrix::empty(block.nrows, block.ncols);
    for (k, (&i, (&j, &v))) in block
        .rows
        .iter()
        .zip(block.cols.iter().zip(&block.vals))
        .enumerate()
    {
        if k >= TUNE_NNZ_CAP {
            break;
        }
        capped.push(i as usize, j as usize, v);
    }
    capped
}

/// Minimum wall time of `TUNE_REPS` runs of `f` (after one warm-up).
fn best_of(mut f: impl FnMut()) -> std::time::Duration {
    f();
    (0..TUNE_REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .min()
        .expect("TUNE_REPS > 0")
}

/// Argmin over `admissible` of each variant's best-of-N time.
fn fastest(admissible: &[LocalKernel], mut run: impl FnMut(LocalKernel)) -> LocalKernel {
    admissible
        .iter()
        .map(|&v| (best_of(|| run(v)), v))
        .min_by_key(|&(t, _)| t)
        .expect("admissible sets are non-empty")
        .1
}

fn measure_csr(op: LocalOp, block: &CsrMatrix, r: usize) -> LocalKernel {
    let s = cap_csr(block);
    let admissible = LocalKernel::admissible(op, SparseFormat::Csr);
    // Synthetic dense operands with fixed seeds: the timings depend on
    // shape and sparsity structure, not on the numerical values.
    match op {
        LocalOp::Spmm => {
            let b = Mat::random(s.ncols(), r, 0xD5C7);
            let mut out = Mat::zeros(s.nrows(), r);
            fastest(admissible, |v| v.spmm_csr(&mut out, &s, &b))
        }
        LocalOp::SpmmT => {
            let a = Mat::random(s.nrows(), r, 0xD5C8);
            let mut out = Mat::zeros(s.ncols(), r);
            fastest(admissible, |v| v.spmm_csr_t(&mut out, &s, &a))
        }
        LocalOp::Sddmm => {
            let a = Mat::random(s.nrows(), r, 0xD5C9);
            let b = Mat::random(s.ncols(), r, 0xD5CA);
            let mut acc = vec![0.0; s.nnz()];
            fastest(admissible, |v| {
                v.sddmm_csr(&mut acc, &s, &a, &b, SddmmCombine::Dot)
            })
        }
        LocalOp::Fused => {
            let a = Mat::random(s.nrows(), r, 0xD5CB);
            let b = Mat::random(s.ncols(), r, 0xD5CC);
            let mut out = Mat::zeros(s.nrows(), r);
            fastest(admissible, |v| v.fused_csr(&mut out, &s, &a, &b))
        }
    }
}

fn measure_coo(op: LocalOp, block: &CooMatrix, r: usize) -> LocalKernel {
    let s = cap_coo(block);
    let admissible = LocalKernel::admissible(op, SparseFormat::Coo);
    match op {
        LocalOp::Spmm => {
            let b = Mat::random(s.ncols, r, 0xD5CD);
            let mut out = Mat::zeros(s.nrows, r);
            fastest(admissible, |v| v.spmm_coo(&mut out, &s, &b))
        }
        LocalOp::SpmmT => {
            let a = Mat::random(s.nrows, r, 0xD5CE);
            let mut out = Mat::zeros(s.ncols, r);
            fastest(admissible, |v| v.spmm_coo_t(&mut out, &s, &a))
        }
        // Fused has no COO form in the dispatch table; measure the
        // SDDMM it decomposes into.
        LocalOp::Sddmm | LocalOp::Fused => {
            let a = Mat::random(s.nrows, r, 0xD5CF);
            let b = Mat::random(s.ncols, r, 0xD5D0);
            let mut acc = vec![0.0; s.nnz()];
            fastest(admissible, |v| {
                v.sddmm_coo(&mut acc, &s, &a, &b, SddmmCombine::Dot)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsk_sparse::gen::erdos_renyi;

    fn req(op: LocalOp, format: SparseFormat) -> TuneRequest {
        TuneRequest {
            op,
            format,
            rows: 64,
            nnz: 512,
            r: 16,
        }
    }

    #[test]
    fn programmatic_pin_beats_cache_and_measurement() {
        let tuning = LocalTuning::new();
        tuning.set_pin(Some(LocalKernel::Blocked));
        let r = req(LocalOp::Spmm, SparseFormat::Csr);
        assert_eq!(tuning.resolve(r), LocalKernel::Blocked);
        let s = CsrMatrix::from_coo(&erdos_renyi(64, 64, 8, 7));
        assert_eq!(tuning.tune_csr(r, &s), LocalKernel::Blocked);
        // Pins clamp per op: Blocked is admissible everywhere, ParNaive
        // is not for the transpose scatter.
        tuning.set_pin(Some(LocalKernel::ParNaive));
        assert_eq!(
            tuning.resolve(req(LocalOp::SpmmT, SparseFormat::Csr)),
            LocalKernel::Naive
        );
    }

    #[test]
    fn tuned_pick_is_cached_and_admissible() {
        let tuning = LocalTuning::new();
        let s = CsrMatrix::from_coo(&erdos_renyi(64, 64, 8, 8));
        for op in LocalOp::ALL {
            let r = req(op, SparseFormat::Csr);
            let pick = tuning.tune_csr(r, &s);
            assert!(LocalKernel::admissible(op, SparseFormat::Csr).contains(&pick));
            assert_eq!(tuning.cached(r), Some(pick));
            assert_eq!(tuning.resolve(r), pick);
        }
    }

    #[test]
    fn empty_blocks_fall_back_to_the_heuristic() {
        let tuning = LocalTuning::new();
        let empty = CsrMatrix::from_coo(&CooMatrix::empty(4, 4));
        let r = TuneRequest {
            op: LocalOp::SpmmT,
            format: SparseFormat::Csr,
            rows: 4,
            nnz: 0,
            r: 16,
        };
        assert_eq!(tuning.tune_csr(r, &empty), LocalKernel::Tiled);
    }

    #[test]
    fn shape_classes_share_cache_entries() {
        // 64 rows and 65 rows land in the same log2 bucket.
        let tuning = LocalTuning::new();
        let s = CsrMatrix::from_coo(&erdos_renyi(64, 64, 8, 9));
        let a = req(LocalOp::Spmm, SparseFormat::Csr);
        let mut b = a;
        b.rows = 65;
        b.nnz = 520;
        let pick = tuning.tune_csr(a, &s);
        assert_eq!(tuning.cached(b), Some(pick));
    }

    #[test]
    fn coo_tuning_stays_in_the_serial_pair() {
        let tuning = LocalTuning::new();
        let s = erdos_renyi(64, 64, 8, 10);
        for op in [LocalOp::Spmm, LocalOp::SpmmT, LocalOp::Sddmm] {
            let pick = tuning.tune_coo(req(op, SparseFormat::Coo), &s);
            assert!([LocalKernel::Naive, LocalKernel::Blocked].contains(&pick));
        }
    }
}
