//! Register-blocked row kernels with width-specialized inner loops.
//!
//! The naive row loops read-modify-write the output row once per
//! nonzero. The blocked variants instead keep a chunk of the output row
//! (or of the dot product's partial sums) in a fixed-size local array —
//! which the compiler keeps in registers — and touch memory once per
//! width chunk. The common ranks r ∈ {8, 16, 32, 64} get fully
//! specialized single-pass paths via const generics; every other width
//! runs chunk-of-8 passes plus a scalar remainder.
//!
//! Accumulation *order* differs from the naive kernels (independent
//! partial sums), so results agree to floating-point tolerance, not
//! bitwise — the same contract the distributed tests already use.

use dsk_dense::Mat;
use dsk_sparse::{CooMatrix, CsrMatrix};

use crate::sddmm::SddmmCombine;

/// One width-`W` pass over a CSR row: accumulate
/// `Σ_j v_j · B[j, col0..col0+W]` in registers, then add to the output
/// row once.
#[inline]
fn spmm_row_w<const W: usize>(cols: &[u32], vals: &[f64], b: &Mat, orow: &mut [f64], col0: usize) {
    let mut acc = [0.0f64; W];
    for (&j, &v) in cols.iter().zip(vals) {
        let brow = &b.row(j as usize)[col0..col0 + W];
        for (a, x) in acc.iter_mut().zip(brow) {
            *a += v * x;
        }
    }
    for (o, a) in orow[col0..col0 + W].iter_mut().zip(&acc) {
        *o += a;
    }
}

/// Register-blocked gather for one CSR row, width-dispatched on
/// `orow.len()`.
#[inline]
pub(super) fn spmm_row_blocked(cols: &[u32], vals: &[f64], b: &Mat, orow: &mut [f64]) {
    let r = orow.len();
    match r {
        8 => spmm_row_w::<8>(cols, vals, b, orow, 0),
        16 => spmm_row_w::<16>(cols, vals, b, orow, 0),
        32 => spmm_row_w::<32>(cols, vals, b, orow, 0),
        64 => spmm_row_w::<64>(cols, vals, b, orow, 0),
        _ => {
            let mut col0 = 0;
            while col0 + 8 <= r {
                spmm_row_w::<8>(cols, vals, b, orow, col0);
                col0 += 8;
            }
            if col0 < r {
                for (&j, &v) in cols.iter().zip(vals) {
                    let brow = b.row(j as usize);
                    for k in col0..r {
                        orow[k] += v * brow[k];
                    }
                }
            }
        }
    }
}

/// `orow[..W] += v · x[..W]` with a compile-time width.
#[inline]
fn axpy_w<const W: usize>(orow: &mut [f64], x: &[f64], v: f64) {
    for (o, xv) in orow[..W].iter_mut().zip(&x[..W]) {
        *o += v * xv;
    }
}

/// `orow += v · x`, width-dispatched on `orow.len()`.
#[inline]
pub(super) fn axpy_blocked(orow: &mut [f64], x: &[f64], v: f64) {
    let r = orow.len();
    match r {
        8 => axpy_w::<8>(orow, x, v),
        16 => axpy_w::<16>(orow, x, v),
        32 => axpy_w::<32>(orow, x, v),
        64 => axpy_w::<64>(orow, x, v),
        _ => {
            let mut k = 0;
            while k + 8 <= r {
                axpy_w::<8>(&mut orow[k..], &x[k..], v);
                k += 8;
            }
            while k < r {
                orow[k] += v * x[k];
                k += 1;
            }
        }
    }
}

/// Four-lane partial sums over `x[..W]·y[..W]` with a compile-time
/// width (fully unrolled by the compiler).
#[inline]
fn dot_w<const W: usize>(x: &[f64], y: &[f64]) -> f64 {
    let (x, y) = (&x[..W], &y[..W]);
    let mut lanes = [0.0f64; 4];
    let mut k = 0;
    while k + 4 <= W {
        lanes[0] += x[k] * y[k];
        lanes[1] += x[k + 1] * y[k + 1];
        lanes[2] += x[k + 2] * y[k + 2];
        lanes[3] += x[k + 3] * y[k + 3];
        k += 4;
    }
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    while k < W {
        s += x[k] * y[k];
        k += 1;
    }
    s
}

/// `⟨x, y⟩` with four independent partial sums, width-dispatched on
/// `x.len()`.
#[inline]
pub(super) fn dot_blocked(x: &[f64], y: &[f64]) -> f64 {
    let r = x.len();
    match r {
        8 => dot_w::<8>(x, y),
        16 => dot_w::<16>(x, y),
        32 => dot_w::<32>(x, y),
        64 => dot_w::<64>(x, y),
        _ => {
            let mut lanes = [0.0f64; 4];
            let mut k = 0;
            while k + 4 <= r {
                lanes[0] += x[k] * y[k];
                lanes[1] += x[k + 1] * y[k + 1];
                lanes[2] += x[k + 2] * y[k + 2];
                lanes[3] += x[k + 3] * y[k + 3];
                k += 4;
            }
            let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
            while k < r {
                s += x[k] * y[k];
                k += 1;
            }
            s
        }
    }
}

/// Register-blocked evaluation of an [`SddmmCombine`]: both combine
/// shapes reduce to (weighted) dot products, so they share
/// [`dot_blocked`].
#[inline]
pub(super) fn eval_blocked(combine: SddmmCombine<'_>, arow: &[f64], brow: &[f64]) -> f64 {
    match combine {
        SddmmCombine::Dot => dot_blocked(arow, brow),
        SddmmCombine::AffinePair { w_src, w_dst } => {
            dot_blocked(w_src, arow) + dot_blocked(w_dst, brow)
        }
    }
}

/// Register-blocked `out += S·B` (CSR).
pub(super) fn blocked_spmm_csr_acc(out: &mut Mat, s: &CsrMatrix, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B width");
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        if cols.is_empty() {
            continue;
        }
        spmm_row_blocked(cols, vals, b, out.row_mut(i));
    }
}

/// Register-blocked `out += Sᵀ·A` (CSR): the scatter keeps the naive
/// per-nonzero order, but each axpy runs width-specialized.
pub(super) fn blocked_spmm_csr_t_acc(out: &mut Mat, s: &CsrMatrix, a: &Mat) {
    assert_eq!(out.nrows(), s.ncols(), "output rows must match S cols");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(out.ncols(), a.ncols(), "output width must match A width");
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        let arow = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            axpy_blocked(out.row_mut(j as usize), arow, v);
        }
    }
}

/// Register-blocked SDDMM accumulation (CSR).
pub(super) fn blocked_sddmm_csr_acc_with(
    acc: &mut [f64],
    s: &CsrMatrix,
    a_panel: &Mat,
    b_panel: &Mat,
    combine: SddmmCombine<'_>,
) {
    assert_eq!(acc.len(), s.nnz(), "accumulator must align with pattern");
    assert_eq!(a_panel.nrows(), s.nrows(), "A panel rows must match S rows");
    assert_eq!(b_panel.nrows(), s.ncols(), "B panel rows must match S cols");
    assert_eq!(
        a_panel.ncols(),
        b_panel.ncols(),
        "panels must cover the same column slice"
    );
    let indptr = s.indptr();
    for i in 0..s.nrows() {
        let (cols, _) = s.row(i);
        let arow = a_panel.row(i);
        let base = indptr[i];
        for (off, &j) in cols.iter().enumerate() {
            acc[base + off] += eval_blocked(combine, arow, b_panel.row(j as usize));
        }
    }
}

/// Register-blocked fused SDDMM+SpMM (CSR).
pub(super) fn blocked_fused_a_csr(out: &mut Mat, s: &CsrMatrix, a: &Mat, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(a.ncols(), b.ncols(), "A and B widths must agree");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B");
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        let arow = a.row(i);
        for (&j, &sv) in cols.iter().zip(vals) {
            let brow = b.row(j as usize);
            let rij = sv * dot_blocked(arow, brow);
            axpy_blocked(out.row_mut(i), brow, rij);
        }
    }
}

/// Register-blocked `out += S·B` over a COO block.
pub(super) fn blocked_spmm_coo_acc(out: &mut Mat, s: &CooMatrix, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows, "output rows must match S rows");
    assert_eq!(b.nrows(), s.ncols, "B rows must match S cols");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B width");
    for (i, j, v) in s.iter() {
        axpy_blocked(out.row_mut(i), b.row(j), v);
    }
}

/// Register-blocked `out += Sᵀ·A` over a COO block.
pub(super) fn blocked_spmm_coo_t_acc(out: &mut Mat, s: &CooMatrix, a: &Mat) {
    assert_eq!(out.nrows(), s.ncols, "output rows must match S cols");
    assert_eq!(a.nrows(), s.nrows, "A rows must match S rows");
    assert_eq!(out.ncols(), a.ncols(), "output width must match A width");
    for (i, j, v) in s.iter() {
        axpy_blocked(out.row_mut(j), a.row(i), v);
    }
}

/// Register-blocked SDDMM accumulation over a COO block (only the
/// coordinate arrays are consulted; values may be detached).
pub(super) fn blocked_sddmm_coo_acc_with(
    acc: &mut [f64],
    s: &CooMatrix,
    a_panel: &Mat,
    b_panel: &Mat,
    combine: SddmmCombine<'_>,
) {
    assert_eq!(
        acc.len(),
        s.rows.len(),
        "accumulator must align with pattern"
    );
    assert_eq!(a_panel.nrows(), s.nrows, "A panel rows must match S rows");
    assert_eq!(b_panel.nrows(), s.ncols, "B panel rows must match S cols");
    assert_eq!(
        a_panel.ncols(),
        b_panel.ncols(),
        "panels must cover the same column slice"
    );
    for (k, (&i, &j)) in s.rows.iter().zip(&s.cols).enumerate() {
        acc[k] += eval_blocked(combine, a_panel.row(i as usize), b_panel.row(j as usize));
    }
}
