//! The local microkernel variant library.
//!
//! Every local op the distributed algorithms call between communication
//! steps — SpMM, the SpMMB/transpose scatter, SDDMM, and the fused
//! SDDMM+SpMM kernel — exists in several interchangeable implementations
//! behind the [`LocalKernel`] variant enum:
//!
//! * **`Naive`** — the original row loops ([`crate::spmm`],
//!   [`crate::sddmm`], [`crate::fused`]), kept as the reference point
//!   every other variant is tuned against;
//! * **`Blocked`** — register-blocked row kernels with width-specialized
//!   unrolled inner loops for r ∈ {8, 16, 32, 64} and a chunk-of-8
//!   generic fallback (multiple independent accumulators per row, one
//!   read-modify-write of the output per width chunk instead of one per
//!   nonzero);
//! * **`Tiled`** — a CSB-style layout for the transpose scatter: the
//!   nonzeros are bucketed by output-row tile per call, so scattered
//!   writes stay within one cache tile at a time;
//! * **`ParNaive` / `ParBlocked` / `ParTiled`** — thread-parallel
//!   versions on the workspace's scoped-thread machinery. Row-parallel
//!   variants split the output (or the accumulator) at row boundaries;
//!   the parallel transpose scatter splits the *output* into tile
//!   stripes instead, because output rows collide across input rows.
//!
//! Not every variant is admissible for every (op, format) pair; the
//! dispatch methods clamp deterministically via [`LocalKernel::clamp`]
//! (e.g. `Tiled` degrades to `Blocked` for row-parallel ops, and COO
//! blocks — which arrive over the wire and are consumed once — only
//! admit the serial `Naive`/`Blocked` pair). Choosing *which* admissible
//! variant to run is the job of [`crate::tuner`]; pinning one for
//! reproducible benches is `DSK_LOCAL_KERNEL` (see the crate docs).

mod blocked;
mod parallel;
mod tiled;

pub(crate) use parallel::par_out_rows;

use dsk_dense::Mat;
use dsk_sparse::{CooMatrix, CsrMatrix};

use crate::sddmm::SddmmCombine;

/// The local kernel ops a [`LocalKernel`] variant can implement. The
/// transpose scatter ([`LocalOp::SpmmT`]) is separate from row-major
/// SpMM because its parallelization story differs (output rows collide).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LocalOp {
    /// `out += S·B` (row-major gather).
    Spmm,
    /// `out += Sᵀ·A` (scatter into output rows indexed by S columns).
    SpmmT,
    /// Sampled dense-dense accumulation aligned with the pattern.
    Sddmm,
    /// The fused SDDMM+SpMM kernel.
    Fused,
}

impl LocalOp {
    /// All ops, in display order.
    pub const ALL: [LocalOp; 4] = [
        LocalOp::Spmm,
        LocalOp::SpmmT,
        LocalOp::Sddmm,
        LocalOp::Fused,
    ];

    /// Stable lower-case label (bench reports, scoreboards).
    pub fn label(self) -> &'static str {
        match self {
            LocalOp::Spmm => "spmm",
            LocalOp::SpmmT => "spmm-t",
            LocalOp::Sddmm => "sddmm",
            LocalOp::Fused => "fused",
        }
    }
}

/// Storage format of the sparse block a local kernel runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SparseFormat {
    /// Compressed sparse rows — stationary blocks, reused across steps.
    Csr,
    /// Coordinate triplets — blocks that just arrived over the wire.
    Coo,
}

/// An interchangeable local kernel implementation. `Default` is
/// [`LocalKernel::Naive`], the original row loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LocalKernel {
    /// The original row loop (the pre-variant-library kernels).
    #[default]
    Naive,
    /// Register-blocked rows with width-specialized inner loops.
    Blocked,
    /// CSB-style output tiling (transpose scatter only).
    Tiled,
    /// Thread-parallel naive rows.
    ParNaive,
    /// Thread-parallel register-blocked rows.
    ParBlocked,
    /// Thread-parallel tile stripes (transpose scatter only).
    ParTiled,
}

impl LocalKernel {
    /// All variants, in display order.
    pub const ALL: [LocalKernel; 6] = [
        LocalKernel::Naive,
        LocalKernel::Blocked,
        LocalKernel::Tiled,
        LocalKernel::ParNaive,
        LocalKernel::ParBlocked,
        LocalKernel::ParTiled,
    ];

    /// Stable lower-case label (bench schema, scoreboards,
    /// `DSK_LOCAL_KERNEL` values).
    pub fn label(self) -> &'static str {
        match self {
            LocalKernel::Naive => "naive",
            LocalKernel::Blocked => "blocked",
            LocalKernel::Tiled => "tiled",
            LocalKernel::ParNaive => "par-naive",
            LocalKernel::ParBlocked => "par-blocked",
            LocalKernel::ParTiled => "par-tiled",
        }
    }

    /// Parse a label (as produced by [`LocalKernel::label`]; `_` is
    /// accepted for `-`). `None` for anything unrecognized.
    pub fn parse(s: &str) -> Option<LocalKernel> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        LocalKernel::ALL.into_iter().find(|v| v.label() == norm)
    }

    /// The variants admissible for an (op, format) pair, `Naive` first.
    pub fn admissible(op: LocalOp, format: SparseFormat) -> &'static [LocalKernel] {
        match (format, op) {
            (SparseFormat::Coo, _) => &[LocalKernel::Naive, LocalKernel::Blocked],
            (SparseFormat::Csr, LocalOp::SpmmT) => &[
                LocalKernel::Naive,
                LocalKernel::Blocked,
                LocalKernel::Tiled,
                LocalKernel::ParTiled,
            ],
            (SparseFormat::Csr, _) => &[
                LocalKernel::Naive,
                LocalKernel::Blocked,
                LocalKernel::ParNaive,
                LocalKernel::ParBlocked,
            ],
        }
    }

    /// Degrade `self` to the nearest admissible variant for (op,
    /// format). Deterministic: tiling degrades to blocking where tiles
    /// don't apply, parallelism is dropped where the op can't split
    /// (the transpose scatter's output rows collide across input rows;
    /// COO blocks are consumed once, serially).
    pub fn clamp(self, op: LocalOp, format: SparseFormat) -> LocalKernel {
        match (format, op) {
            (SparseFormat::Coo, _) => match self {
                LocalKernel::Naive | LocalKernel::ParNaive => LocalKernel::Naive,
                _ => LocalKernel::Blocked,
            },
            (SparseFormat::Csr, LocalOp::SpmmT) => match self {
                LocalKernel::ParNaive => LocalKernel::Naive,
                LocalKernel::ParBlocked => LocalKernel::Blocked,
                other => other,
            },
            (SparseFormat::Csr, _) => match self {
                LocalKernel::Tiled => LocalKernel::Blocked,
                LocalKernel::ParTiled => LocalKernel::ParBlocked,
                other => other,
            },
        }
    }

    // ------------------------------------------------------------------
    // Dispatch. Each method clamps first, so callers may pass any
    // variant (a pinned or migrated pick stays valid across ops).
    // ------------------------------------------------------------------

    /// `out += S·B` on a CSR block through this variant.
    pub fn spmm_csr(self, out: &mut Mat, s: &CsrMatrix, b: &Mat) {
        match self.clamp(LocalOp::Spmm, SparseFormat::Csr) {
            LocalKernel::Naive => crate::spmm::spmm_csr_acc(out, s, b),
            LocalKernel::Blocked => blocked::blocked_spmm_csr_acc(out, s, b),
            LocalKernel::ParNaive => crate::spmm::par_spmm_csr_acc(out, s, b),
            LocalKernel::ParBlocked => parallel::par_blocked_spmm_csr_acc(out, s, b),
            _ => unreachable!("clamp returned an inadmissible variant"),
        }
    }

    /// `out += Sᵀ·A` on a CSR block through this variant.
    pub fn spmm_csr_t(self, out: &mut Mat, s: &CsrMatrix, a: &Mat) {
        match self.clamp(LocalOp::SpmmT, SparseFormat::Csr) {
            LocalKernel::Naive => crate::spmm::spmm_csr_t_acc(out, s, a),
            LocalKernel::Blocked => blocked::blocked_spmm_csr_t_acc(out, s, a),
            LocalKernel::Tiled => tiled::tiled_spmm_csr_t_acc(out, s, a),
            LocalKernel::ParTiled => tiled::par_tiled_spmm_csr_t_acc(out, s, a),
            _ => unreachable!("clamp returned an inadmissible variant"),
        }
    }

    /// SDDMM accumulation on a CSR block through this variant.
    pub fn sddmm_csr(
        self,
        acc: &mut [f64],
        s: &CsrMatrix,
        a_panel: &Mat,
        b_panel: &Mat,
        combine: SddmmCombine<'_>,
    ) {
        match self.clamp(LocalOp::Sddmm, SparseFormat::Csr) {
            LocalKernel::Naive => {
                crate::sddmm::sddmm_csr_acc_with(acc, s, a_panel, b_panel, combine)
            }
            LocalKernel::Blocked => {
                blocked::blocked_sddmm_csr_acc_with(acc, s, a_panel, b_panel, combine)
            }
            LocalKernel::ParNaive => {
                crate::sddmm::par_sddmm_csr_acc_with(acc, s, a_panel, b_panel, combine)
            }
            LocalKernel::ParBlocked => {
                parallel::par_blocked_sddmm_csr_acc_with(acc, s, a_panel, b_panel, combine)
            }
            _ => unreachable!("clamp returned an inadmissible variant"),
        }
    }

    /// The fused SDDMM+SpMM kernel on a CSR block through this variant.
    pub fn fused_csr(self, out: &mut Mat, s: &CsrMatrix, a: &Mat, b: &Mat) {
        match self.clamp(LocalOp::Fused, SparseFormat::Csr) {
            LocalKernel::Naive => crate::fused::fused_a_csr(out, s, a, b),
            LocalKernel::Blocked => blocked::blocked_fused_a_csr(out, s, a, b),
            LocalKernel::ParNaive => crate::fused::par_fused_a_csr(out, s, a, b),
            LocalKernel::ParBlocked => parallel::par_blocked_fused_a_csr(out, s, a, b),
            _ => unreachable!("clamp returned an inadmissible variant"),
        }
    }

    /// `out += S·B` on a COO block through this variant.
    pub fn spmm_coo(self, out: &mut Mat, s: &CooMatrix, b: &Mat) {
        match self.clamp(LocalOp::Spmm, SparseFormat::Coo) {
            LocalKernel::Naive => crate::spmm::spmm_coo_acc(out, s, b),
            LocalKernel::Blocked => blocked::blocked_spmm_coo_acc(out, s, b),
            _ => unreachable!("clamp returned an inadmissible variant"),
        }
    }

    /// `out += Sᵀ·A` on a COO block through this variant.
    pub fn spmm_coo_t(self, out: &mut Mat, s: &CooMatrix, a: &Mat) {
        match self.clamp(LocalOp::SpmmT, SparseFormat::Coo) {
            LocalKernel::Naive => crate::spmm::spmm_coo_t_acc(out, s, a),
            LocalKernel::Blocked => blocked::blocked_spmm_coo_t_acc(out, s, a),
            _ => unreachable!("clamp returned an inadmissible variant"),
        }
    }

    /// SDDMM accumulation on a COO block through this variant.
    pub fn sddmm_coo(
        self,
        acc: &mut [f64],
        s: &CooMatrix,
        a_panel: &Mat,
        b_panel: &Mat,
        combine: SddmmCombine<'_>,
    ) {
        match self.clamp(LocalOp::Sddmm, SparseFormat::Coo) {
            LocalKernel::Naive => {
                crate::sddmm::sddmm_coo_acc_with(acc, s, a_panel, b_panel, combine)
            }
            LocalKernel::Blocked => {
                blocked::blocked_sddmm_coo_acc_with(acc, s, a_panel, b_panel, combine)
            }
            _ => unreachable!("clamp returned an inadmissible variant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for v in LocalKernel::ALL {
            assert_eq!(LocalKernel::parse(v.label()), Some(v));
        }
        assert_eq!(
            LocalKernel::parse(" Par_Blocked \n"),
            Some(LocalKernel::ParBlocked)
        );
        assert_eq!(LocalKernel::parse("mkl"), None);
        assert_eq!(LocalKernel::parse(""), None);
    }

    #[test]
    fn clamp_lands_in_the_admissible_set() {
        for op in LocalOp::ALL {
            for format in [SparseFormat::Csr, SparseFormat::Coo] {
                let adm = LocalKernel::admissible(op, format);
                assert_eq!(adm[0], LocalKernel::Naive);
                for v in LocalKernel::ALL {
                    let c = v.clamp(op, format);
                    assert!(
                        adm.contains(&c),
                        "{v:?} clamped to {c:?}, inadmissible for {op:?}/{format:?}"
                    );
                    // Admissible variants are fixed points.
                    if adm.contains(&v) {
                        assert_eq!(c, v);
                    }
                }
            }
        }
    }
}
