//! Thread-parallel drivers for the register-blocked variants.
//!
//! Row-parallel ops split the output matrix (or the pattern-aligned
//! accumulator) into contiguous row chunks at row boundaries — the same
//! scoped-thread machinery as [`crate::spmm::par_spmm_csr_acc`] — and
//! run the blocked row kernel inside each chunk. Thread count comes
//! from `par_threads()` (one per core, `DSK_THREADS` overrides).

use dsk_dense::Mat;
use dsk_sparse::CsrMatrix;

use super::blocked;
use crate::sddmm::SddmmCombine;
use crate::spmm::par_threads;

/// Run `f(row, out_row)` over all rows of `out`, contiguous row chunks
/// in parallel (one chunk per thread).
pub(crate) fn par_out_rows<F>(out: &mut Mat, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let r = out.ncols();
    let nrows = out.nrows();
    let nthreads = par_threads().min(nrows.max(1));
    let rows_per = nrows.div_ceil(nthreads.max(1)).max(1);
    let chunks: Vec<(usize, &mut [f64])> = out
        .as_mut_slice()
        .chunks_mut(rows_per * r.max(1))
        .enumerate()
        .map(|(k, chunk)| (k * rows_per, chunk))
        .collect();
    std::thread::scope(|scope| {
        for (row0, chunk) in chunks {
            let f = &f;
            scope.spawn(move || {
                let nchunk = chunk.len().checked_div(r).unwrap_or(0);
                for (di, orow) in chunk.chunks_mut(r.max(1)).enumerate().take(nchunk) {
                    f(row0 + di, orow);
                }
            });
        }
    });
}

/// Run `f(row, acc_row)` over all rows of a CSR pattern, the
/// pattern-aligned accumulator split at row-chunk boundaries (rows own
/// disjoint `acc` ranges, so chunks are independent).
pub(crate) fn par_acc_rows<F>(acc: &mut [f64], s: &CsrMatrix, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let indptr = s.indptr();
    let nchunks = par_threads().max(1);
    let rows_per = s.nrows().div_ceil(nchunks).max(1);
    let mut jobs: Vec<(usize, usize, &mut [f64])> = Vec::new();
    let mut rest = acc;
    let mut consumed = 0usize;
    let mut row0 = 0usize;
    while row0 < s.nrows() {
        let row1 = (row0 + rows_per).min(s.nrows());
        let end = indptr[row1];
        let (chunk, tail) = rest.split_at_mut(end - consumed);
        jobs.push((row0, row1, chunk));
        rest = tail;
        consumed = end;
        row0 = row1;
    }
    std::thread::scope(|scope| {
        for (r0, r1, chunk) in jobs {
            let f = &f;
            scope.spawn(move || {
                let base = indptr[r0];
                for i in r0..r1 {
                    let (lo, hi) = (indptr[i] - base, indptr[i + 1] - base);
                    f(i, &mut chunk[lo..hi]);
                }
            });
        }
    });
}

/// Row-parallel register-blocked `out += S·B` (CSR).
pub(super) fn par_blocked_spmm_csr_acc(out: &mut Mat, s: &CsrMatrix, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B width");
    par_out_rows(out, |i, orow| {
        let (cols, vals) = s.row(i);
        if !cols.is_empty() {
            blocked::spmm_row_blocked(cols, vals, b, orow);
        }
    });
}

/// Row-parallel register-blocked SDDMM accumulation (CSR).
pub(super) fn par_blocked_sddmm_csr_acc_with(
    acc: &mut [f64],
    s: &CsrMatrix,
    a_panel: &Mat,
    b_panel: &Mat,
    combine: SddmmCombine<'_>,
) {
    assert_eq!(acc.len(), s.nnz(), "accumulator must align with pattern");
    assert_eq!(a_panel.nrows(), s.nrows(), "A panel rows must match S rows");
    assert_eq!(b_panel.nrows(), s.ncols(), "B panel rows must match S cols");
    assert_eq!(
        a_panel.ncols(),
        b_panel.ncols(),
        "panels must cover the same column slice"
    );
    par_acc_rows(acc, s, |i, acc_row| {
        let (cols, _) = s.row(i);
        let arow = a_panel.row(i);
        for (slot, &j) in acc_row.iter_mut().zip(cols) {
            *slot += blocked::eval_blocked(combine, arow, b_panel.row(j as usize));
        }
    });
}

/// Row-parallel register-blocked fused SDDMM+SpMM (CSR).
pub(super) fn par_blocked_fused_a_csr(out: &mut Mat, s: &CsrMatrix, a: &Mat, b: &Mat) {
    assert_eq!(out.nrows(), s.nrows(), "output rows must match S rows");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(b.nrows(), s.ncols(), "B rows must match S cols");
    assert_eq!(a.ncols(), b.ncols(), "A and B widths must agree");
    assert_eq!(out.ncols(), b.ncols(), "output width must match B");
    par_out_rows(out, |i, orow| {
        let (cols, vals) = s.row(i);
        let arow = a.row(i);
        for (&j, &sv) in cols.iter().zip(vals) {
            let brow = b.row(j as usize);
            let rij = sv * blocked::dot_blocked(arow, brow);
            blocked::axpy_blocked(orow, brow, rij);
        }
    });
}
