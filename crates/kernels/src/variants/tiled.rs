//! CSB-style output tiling for the transpose scatter.
//!
//! `out += Sᵀ·A` scatters into output rows indexed by S *columns*, so
//! consecutive nonzeros of a CSR row hit scattered output rows — cache
//! hostile when the output outgrows the cache, and unsafe to
//! row-parallelize (output rows collide across input rows). The tiled
//! variants bucket the nonzeros by output-row tile per call (the
//! conversion cost is part of the variant, measured honestly by the
//! tuner):
//!
//! * [`tiled_spmm_csr_t_acc`] processes tiles sequentially, confining
//!   scattered writes to one cache-sized stripe of the output at a time;
//! * [`par_tiled_spmm_csr_t_acc`] gives each thread its own stripe of
//!   the output (`split_at_mut` at stripe boundaries), making the
//!   scatter safely parallel — the CSB observation that column-block
//!   buckets partition the *writes*.
//!
//! Within any output row, nonzeros are visited in increasing CSR row
//! order by every variant here, so tiled results are bitwise equal to
//! the naive scatter.

use dsk_dense::Mat;
use dsk_sparse::CsrMatrix;

use super::blocked::axpy_blocked;
use crate::spmm::par_threads;

/// Target stripe footprint of the serial tiled scatter: tile rows are
/// sized so one output stripe (`tile_rows · r` doubles) stays around
/// 256 KiB, i.e. L2-resident.
const TILE_DOUBLES: usize = 32 * 1024;

/// Bucket the nonzeros of `s` by the output-row stripe `j / tile_rows`.
/// Entries keep CSR row-major order inside each bucket, so per-output-
/// row accumulation order matches the naive scatter exactly.
type TileBuckets = Vec<Vec<(u32, u32, f64)>>;

fn bucket_by_out_row(s: &CsrMatrix, tile_rows: usize, ntiles: usize) -> TileBuckets {
    let mut buckets: TileBuckets = vec![Vec::new(); ntiles];
    for i in 0..s.nrows() {
        let (cols, vals) = s.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            buckets[j as usize / tile_rows].push((i as u32, j, v));
        }
    }
    buckets
}

/// Cache-tiled `out += Sᵀ·A` (CSR): bucket by output stripe, then
/// scatter stripe by stripe with register-blocked axpys.
pub(super) fn tiled_spmm_csr_t_acc(out: &mut Mat, s: &CsrMatrix, a: &Mat) {
    assert_eq!(out.nrows(), s.ncols(), "output rows must match S cols");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(out.ncols(), a.ncols(), "output width must match A width");
    let nrows_out = out.nrows();
    if nrows_out == 0 {
        return;
    }
    let r = out.ncols();
    let tile_rows = (TILE_DOUBLES / r.max(1)).clamp(1, nrows_out);
    let ntiles = nrows_out.div_ceil(tile_rows);
    for bucket in bucket_by_out_row(s, tile_rows, ntiles) {
        for (i, j, v) in bucket {
            axpy_blocked(out.row_mut(j as usize), a.row(i as usize), v);
        }
    }
}

/// Thread-parallel tiled `out += Sᵀ·A` (CSR): one output stripe per
/// thread, split at stripe boundaries so the scatter never crosses a
/// thread's slice.
pub(super) fn par_tiled_spmm_csr_t_acc(out: &mut Mat, s: &CsrMatrix, a: &Mat) {
    assert_eq!(out.nrows(), s.ncols(), "output rows must match S cols");
    assert_eq!(a.nrows(), s.nrows(), "A rows must match S rows");
    assert_eq!(out.ncols(), a.ncols(), "output width must match A width");
    let nrows_out = out.nrows();
    let r = out.ncols();
    let nthreads = par_threads().min(nrows_out.max(1));
    if nthreads <= 1 || r == 0 {
        return tiled_spmm_csr_t_acc(out, s, a);
    }
    let tile_rows = nrows_out.div_ceil(nthreads);
    // `nthreads.min(nrows_out)` stripes may still overshoot when
    // tile_rows * (nthreads - 1) >= nrows_out (e.g. 5 rows on 4
    // threads -> 3 stripes of <=2 rows), so size by coverage: the last
    // stripe's row0 = (ntiles-1)*tile_rows is then always < nrows_out.
    let ntiles = nrows_out.div_ceil(tile_rows);
    let buckets = bucket_by_out_row(s, tile_rows, ntiles);
    // (first output row of the stripe, the stripe's slice of `out`,
    // the nonzeros scattering into it)
    type StripeJob<'a> = (usize, &'a mut [f64], Vec<(u32, u32, f64)>);
    let mut jobs: Vec<StripeJob<'_>> = Vec::new();
    let mut rest = out.as_mut_slice();
    for (t, bucket) in buckets.into_iter().enumerate() {
        let row0 = t * tile_rows;
        let row1 = (row0 + tile_rows).min(nrows_out);
        let (chunk, tail) = rest.split_at_mut((row1 - row0) * r);
        rest = tail;
        jobs.push((row0, chunk, bucket));
    }
    std::thread::scope(|scope| {
        for (row0, chunk, bucket) in jobs {
            scope.spawn(move || {
                for (i, j, v) in bucket {
                    let off = (j as usize - row0) * r;
                    axpy_blocked(&mut chunk[off..off + r], a.row(i as usize), v);
                }
            });
        }
    });
}
