//! Randomized property tests of the local kernels: linearity,
//! composition, and slice-partition invariances over randomized shapes
//! and values. Cases come from a seeded PRNG so failures reproduce.

use dsk_dense::ops::max_abs_diff;
use dsk_dense::Mat;
use dsk_kernels as kern;
use dsk_rng::Rng;
use dsk_sparse::{gen, CsrMatrix};

const CASES: usize = 24;

fn problem(m: usize, n: usize, r: usize, seed: u64) -> (CsrMatrix, Mat, Mat) {
    let nnz_row = (1 + seed as usize % 4).min(n);
    let s = CsrMatrix::from_coo(&gen::erdos_renyi(m, n, nnz_row, seed));
    (s, Mat::random(m, r, seed + 1), Mat::random(n, r, seed + 2))
}

/// SDDMM is linear in A: SDDMM(αA, B, S) = α·SDDMM(A, B, S).
#[test]
fn sddmm_linear_in_a() {
    let mut rng = Rng::seed_from_u64(0xB001);
    for _ in 0..CASES {
        let m = 2 + rng.gen_index(22);
        let n = 2 + rng.gen_index(22);
        let r = 1 + rng.gen_index(7);
        let alpha = rng.gen_range_f64(-3.0, 3.0);
        let seed = rng.next_u64() % 300;
        let (s, a, b) = problem(m, n, r, seed);
        let base = kern::sddmm_csr(&s, &a, &b);
        let mut scaled_a = a.clone();
        dsk_dense::ops::scale(&mut scaled_a, alpha);
        let scaled = kern::sddmm_csr(&s, &scaled_a, &b);
        for (x, y) in scaled.iter().zip(&base) {
            assert!((x - alpha * y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }
}

/// SpMM distributes over dense addition: S·(B₁+B₂) = S·B₁ + S·B₂.
#[test]
fn spmm_distributes_over_addition() {
    let mut rng = Rng::seed_from_u64(0xB002);
    for _ in 0..CASES {
        let m = 2 + rng.gen_index(22);
        let n = 2 + rng.gen_index(22);
        let r = 1 + rng.gen_index(7);
        let seed = rng.next_u64() % 300;
        let (s, _, b1) = problem(m, n, r, seed);
        let b2 = Mat::random(n, r, seed + 9);
        let mut sum = b1.clone();
        dsk_dense::ops::add_assign(&mut sum, &b2);
        let mut lhs = Mat::zeros(m, r);
        kern::spmm_csr_acc(&mut lhs, &s, &sum);
        let mut rhs = Mat::zeros(m, r);
        kern::spmm_csr_acc(&mut rhs, &s, &b1);
        kern::spmm_csr_acc(&mut rhs, &s, &b2);
        assert!(max_abs_diff(&lhs, &rhs) < 1e-10);
    }
}

/// The fused kernel equals the composition for every random shape.
#[test]
fn fused_equals_composition() {
    let mut rng = Rng::seed_from_u64(0xB003);
    for _ in 0..CASES {
        let m = 2 + rng.gen_index(18);
        let n = 2 + rng.gen_index(18);
        let r = 1 + rng.gen_index(7);
        let seed = rng.next_u64() % 300;
        let (s, a, b) = problem(m, n, r, seed);
        let mut fused = Mat::zeros(m, r);
        kern::fused_a_csr(&mut fused, &s, &a, &b);
        let vals = kern::sddmm_csr(&s, &a, &b);
        let mut rmat = s.clone();
        rmat.set_vals(vals);
        let mut composed = Mat::zeros(m, r);
        kern::spmm_csr_acc(&mut composed, &rmat, &b);
        assert!(max_abs_diff(&fused, &composed) < 1e-10);
    }
}

/// Slice-partial SDDMM accumulation over any random partition of the
/// r-dimension equals the full-width computation — the property the
/// 1.5D sparse-shifting and both 2.5D algorithms rely on.
#[test]
fn sddmm_slices_partition_r() {
    let mut rng = Rng::seed_from_u64(0xB004);
    for _ in 0..CASES {
        let m = 2 + rng.gen_index(14);
        let n = 2 + rng.gen_index(14);
        let r = 2 + rng.gen_index(10);
        let cut = (1 + rng.gen_index(10)).min(r - 1);
        let seed = rng.next_u64() % 300;
        let (s, a, b) = problem(m, n, r, seed);
        let mut full = vec![0.0; s.nnz()];
        kern::sddmm_csr_acc(&mut full, &s, &a, &b);
        let mut sliced = vec![0.0; s.nnz()];
        for range in [0..cut, cut..r] {
            let ap = a.cols_block(range.clone());
            let bp = b.cols_block(range);
            kern::sddmm_csr_acc(&mut sliced, &s, &ap, &bp);
        }
        for (x, y) in sliced.iter().zip(&full) {
            assert!((x - y).abs() < 1e-10);
        }
    }
}

/// SpMMB via the transposed matrix equals the scatter kernel.
#[test]
fn spmm_t_equals_transposed_spmm() {
    let mut rng = Rng::seed_from_u64(0xB005);
    for _ in 0..CASES {
        let m = 2 + rng.gen_index(18);
        let n = 2 + rng.gen_index(18);
        let r = 1 + rng.gen_index(5);
        let seed = rng.next_u64() % 300;
        let (s, a, _) = problem(m, n, r, seed);
        let mut scatter = Mat::zeros(n, r);
        kern::spmm_csr_t_acc(&mut scatter, &s, &a);
        let mut viat = Mat::zeros(n, r);
        kern::spmm_csr_acc(&mut viat, &s.transpose(), &a);
        assert!(max_abs_diff(&scatter, &viat) < 1e-10);
    }
}

/// Thread-parallel kernels agree with serial for random shapes.
#[test]
fn parallel_kernels_match_serial() {
    let mut rng = Rng::seed_from_u64(0xB006);
    for _ in 0..CASES {
        let m = 2 + rng.gen_index(38);
        let n = 2 + rng.gen_index(38);
        let r = 1 + rng.gen_index(9);
        let seed = rng.next_u64() % 300;
        let (s, a, b) = problem(m, n, r, seed);
        let mut o1 = Mat::zeros(m, r);
        let mut o2 = Mat::zeros(m, r);
        kern::spmm_csr_acc(&mut o1, &s, &b);
        kern::par_spmm_csr_acc(&mut o2, &s, &b);
        assert!(max_abs_diff(&o1, &o2) < 1e-11);
        let mut a1 = vec![0.0; s.nnz()];
        let mut a2 = vec![0.0; s.nnz()];
        kern::sddmm_csr_acc(&mut a1, &s, &a, &b);
        kern::sddmm::par_sddmm_csr_acc(&mut a2, &s, &a, &b);
        for (x, y) in a1.iter().zip(&a2) {
            assert!((x - y).abs() < 1e-11);
        }
    }
}

/// The GAT affine combine matches the explicit formula on random
/// weights.
#[test]
fn affine_combine_matches_formula() {
    let mut rng = Rng::seed_from_u64(0xB007);
    for _ in 0..CASES {
        let m = 2 + rng.gen_index(10);
        let n = 2 + rng.gen_index(10);
        let r = 1 + rng.gen_index(7);
        let seed = rng.next_u64() % 300;
        let (s, a, b) = problem(m, n, r, seed);
        let w_src = Mat::random(1, r, seed + 20).into_vec();
        let w_dst = Mat::random(1, r, seed + 21).into_vec();
        let mut acc = vec![0.0; s.nnz()];
        kern::sddmm::sddmm_csr_acc_with(
            &mut acc,
            &s,
            &a,
            &b,
            kern::SddmmCombine::AffinePair {
                w_src: &w_src,
                w_dst: &w_dst,
            },
        );
        let coo = s.to_coo();
        for (k, (i, j, _)) in coo.iter().enumerate() {
            let want: f64 = (0..r)
                .map(|t| w_src[t] * a.get(i, t) + w_dst[t] * b.get(j, t))
                .sum();
            assert!((acc[k] - want).abs() < 1e-10);
        }
    }
}
