//! Regression: the parallel tiled transpose scatter must not assume
//! one stripe per thread. With `tile_rows = ceil(nrows_out / nthreads)`
//! the stripes can cover all output rows in *fewer* than `nthreads`
//! buckets (e.g. 5 output rows on 4 threads -> stripes of 2 rows cover
//! everything in 3), and iterating a bucket per thread used to
//! underflow `row1 - row0` past the last real stripe. Runs in its own
//! test binary because it pins `DSK_THREADS` process-wide.

use dsk_dense::ops::max_abs_diff;
use dsk_dense::Mat;
use dsk_kernels as kern;
use dsk_kernels::LocalKernel;
use dsk_sparse::{CooMatrix, CsrMatrix};

#[test]
fn par_tiled_scatter_survives_more_threads_than_stripes() {
    // (S rows, output rows = S cols, forced thread count). The first is
    // the reviewer's reproduction: 5 output rows, 4 threads -> 3
    // stripes. The rest probe one-past-coverage at other scales,
    // including threads > output rows and a single output row.
    let cases = [
        (3usize, 5usize, 4usize),
        (4, 17, 16),
        (2, 3, 8),
        (6, 1, 4),
        (5, 7, 7),
    ];
    for (m, n, threads) in cases {
        std::env::set_var("DSK_THREADS", threads.to_string());
        let mut coo = CooMatrix::empty(m, n);
        for i in 0..m {
            for j in 0..n {
                coo.push(i, j, ((i * n + j) as f64).cos());
            }
        }
        let s = CsrMatrix::from_coo(&coo);
        for r in [1usize, 8, 11] {
            let a = Mat::random(m, r, 7 + r as u64);
            let mut want = Mat::random(n, r, 11);
            let mut got = want.clone();
            kern::spmm_csr_t_acc(&mut want, &s, &a);
            LocalKernel::ParTiled.spmm_csr_t(&mut got, &s, &a);
            assert!(
                max_abs_diff(&want, &got) < 1e-12,
                "{m}x{n} r={r} threads={threads}"
            );
        }
    }
    std::env::remove_var("DSK_THREADS");
}
