//! Conformance of the variant library: every [`LocalKernel`] variant,
//! dispatched through every op, must agree with the naive reference —
//! on hand-built edge shapes (the empty block, interior empty rows, a
//! single-column matrix, an all-dense block) crossed with edge widths
//! (r = 1, the exact unroll width, one past it), and on a seeded random
//! sweep. Dispatch clamps inadmissible variants, so all six enum values
//! are legal through every method; accumulation (`+=`) semantics are
//! checked by starting both sides from the same random prefill.

use dsk_dense::ops::max_abs_diff;
use dsk_dense::Mat;
use dsk_kernels as kern;
use dsk_kernels::{LocalKernel, SddmmCombine};
use dsk_rng::Rng;
use dsk_sparse::{gen, CooMatrix, CsrMatrix};

/// Blocked variants re-associate the per-row dot products (multi-lane
/// partial sums), so agreement is up to rounding, not bitwise.
const TOL: f64 = 1e-10;

/// The edge-shape menagerie. Widths come from the caller.
fn edge_matrices() -> Vec<(&'static str, CooMatrix)> {
    let mut shapes = Vec::new();

    shapes.push(("all-empty", CooMatrix::empty(5, 6)));

    // Interior and trailing empty rows (and empty columns 1, 2, 4).
    let mut holes = CooMatrix::empty(6, 7);
    holes.push(1, 3, 2.0);
    holes.push(3, 0, -1.5);
    holes.push(3, 6, 0.25);
    holes.push(4, 5, 4.0);
    shapes.push(("empty-rows", holes));

    // A single-column sparse block: every nonzero scatters into (or
    // gathers from) the same dense row.
    let mut col = CooMatrix::empty(8, 1);
    for i in [0usize, 2, 3, 7] {
        col.push(i, 0, i as f64 - 1.5);
    }
    shapes.push(("single-column", col));

    // All-dense block: the densest case the tuner can ever see.
    let mut dense = CooMatrix::empty(4, 5);
    for i in 0..4 {
        for j in 0..5 {
            dense.push(i, j, ((i * 5 + j) as f64).sin());
        }
    }
    shapes.push(("all-dense", dense));

    shapes
}

/// Run every variant through every dispatch method on one block and
/// compare against the naive kernels.
fn check_all_variants(label: &str, coo: &CooMatrix, r: usize, seed: u64) {
    let s = CsrMatrix::from_coo(coo);
    let (m, n) = (s.nrows(), s.ncols());
    let a = Mat::random(m, r, seed);
    let b = Mat::random(n, r, seed + 1);
    let pre_m = Mat::random(m, r, seed + 2);
    let pre_n = Mat::random(n, r, seed + 3);

    for v in LocalKernel::ALL {
        let ctx = format!("{label}: {v:?} r={r}");

        // CSR SpMM.
        let mut want = pre_m.clone();
        kern::spmm_csr_acc(&mut want, &s, &b);
        let mut got = pre_m.clone();
        v.spmm_csr(&mut got, &s, &b);
        assert!(max_abs_diff(&want, &got) < TOL, "{ctx}: spmm_csr");

        // CSR transpose scatter.
        let mut want = pre_n.clone();
        kern::spmm_csr_t_acc(&mut want, &s, &a);
        let mut got = pre_n.clone();
        v.spmm_csr_t(&mut got, &s, &a);
        assert!(max_abs_diff(&want, &got) < TOL, "{ctx}: spmm_csr_t");

        // CSR SDDMM (accumulating, Dot combine).
        let mut want = vec![0.125; s.nnz()];
        kern::sddmm_csr_acc(&mut want, &s, &a, &b);
        let mut got = vec![0.125; s.nnz()];
        v.sddmm_csr(&mut got, &s, &a, &b, SddmmCombine::Dot);
        for (x, y) in got.iter().zip(&want) {
            assert!((x - y).abs() < TOL, "{ctx}: sddmm_csr");
        }

        // CSR fused SDDMM+SpMM.
        let mut want = pre_m.clone();
        kern::fused_a_csr(&mut want, &s, &a, &b);
        let mut got = pre_m.clone();
        v.fused_csr(&mut got, &s, &a, &b);
        assert!(max_abs_diff(&want, &got) < TOL, "{ctx}: fused_csr");

        // COO SpMM.
        let mut want = pre_m.clone();
        kern::spmm_coo_acc(&mut want, coo, &b);
        let mut got = pre_m.clone();
        v.spmm_coo(&mut got, coo, &b);
        assert!(max_abs_diff(&want, &got) < TOL, "{ctx}: spmm_coo");

        // COO transpose scatter.
        let mut want = pre_n.clone();
        kern::spmm_coo_t_acc(&mut want, coo, &a);
        let mut got = pre_n.clone();
        v.spmm_coo_t(&mut got, coo, &a);
        assert!(max_abs_diff(&want, &got) < TOL, "{ctx}: spmm_coo_t");

        // COO SDDMM.
        let mut want = vec![-0.25; coo.nnz()];
        kern::sddmm_coo_acc(&mut want, coo, &a, &b);
        let mut got = vec![-0.25; coo.nnz()];
        v.sddmm_coo(&mut got, coo, &a, &b, SddmmCombine::Dot);
        for (x, y) in got.iter().zip(&want) {
            assert!((x - y).abs() < TOL, "{ctx}: sddmm_coo");
        }
    }
}

/// r = 1 (single-column dense operands), r = 8 (the exact
/// width-specialized unroll), r = 9 (one past it, exercising the
/// chunk-of-8 + scalar remainder path).
const EDGE_WIDTHS: [usize; 3] = [1, 8, 9];

#[test]
fn every_variant_matches_naive_on_edge_shapes() {
    for (label, coo) in edge_matrices() {
        for (wi, r) in EDGE_WIDTHS.into_iter().enumerate() {
            check_all_variants(label, &coo, r, 0xC0DE + wi as u64 * 17);
        }
    }
}

#[test]
fn every_variant_matches_naive_on_seeded_random_shapes() {
    let mut rng = Rng::seed_from_u64(0xB008);
    for case in 0..16 {
        let m = 2 + rng.gen_index(46);
        let n = 2 + rng.gen_index(46);
        let r = 1 + rng.gen_index(11);
        let nnz_row = (1 + rng.gen_index(6)).min(n);
        let seed = rng.next_u64() % 1000;
        let coo = gen::erdos_renyi(m, n, nnz_row, seed);
        check_all_variants(&format!("random-{case} ({m}x{n})"), &coo, r, seed + 40);
    }
}

/// The wider unrolled widths (16, 32, 64) go through their specialized
/// inner loops; a denser block catches stride bugs the tiny shapes hide.
#[test]
fn width_specialized_kernels_match_at_every_unroll_width() {
    for (wi, r) in [16usize, 32, 64].into_iter().enumerate() {
        let coo = gen::erdos_renyi(96, 80, 5, 31 + wi as u64);
        check_all_variants("unroll-width", &coo, r, 0xAB + wi as u64);
    }
}
