//! # dsk-rng — minimal deterministic pseudo-randomness
//!
//! A single, dependency-free PRNG used everywhere the workspace needs
//! randomness: workload generators, random dense matrices, permutations,
//! and the randomized property tests. Determinism in the seed is a hard
//! requirement (distributed ranks regenerate their own blocks of shared
//! global matrices without communication), quality beyond that is not —
//! xoshiro256** seeded through splitmix64 is far more than enough for
//! synthetic benchmark inputs.

/// A seedable xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Build a generator whose whole stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be positive. Uses Lemire's
    /// multiply-shift reduction with a rejection step, so the result is
    /// unbiased.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below needs a positive bound");
        // Lemire: map x·n / 2^64; reject the short low fringe.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_below(n as u64) as usize
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(1);
        let mut c = Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_below_covers_range_without_bias_smoke() {
        let mut r = Rng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[r.gen_below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "suspicious bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
