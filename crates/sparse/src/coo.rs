//! Coordinate-format sparse matrices.
//!
//! COO is the wire and staging format: blocks that travel between ranks
//! (the 1.5D sparse-shifting algorithm ships whole blocks around a ring)
//! are COO, and the paper's cost model charges **three words per
//! nonzero** (row, column, value) for them — reflected by the
//! [`Payload`] implementation.

use dsk_comm::{Payload, WirePayload, WireReader};

/// A sparse `nrows × ncols` matrix as parallel (row, col, value) arrays.
/// Indices are `u32`; matrices beyond 4 G rows/cols are out of scope.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row index of each nonzero.
    pub rows: Vec<u32>,
    /// Column index of each nonzero.
    pub cols: Vec<u32>,
    /// Value of each nonzero.
    pub vals: Vec<f64>,
}

impl CooMatrix {
    /// An empty matrix with the given shape.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from parallel triplet arrays (must be equal length, indices
    /// in bounds).
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(rows.len(), cols.len(), "triplet arrays must align");
        assert_eq!(rows.len(), vals.len(), "triplet arrays must align");
        debug_assert!(rows.iter().all(|&r| (r as usize) < nrows), "row index OOB");
        debug_assert!(cols.iter().all(|&c| (c as usize) < ncols), "col index OOB");
        CooMatrix {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        }
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append one entry.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.rows.push(i as u32);
        self.cols.push(j as u32);
        self.vals.push(v);
    }

    /// The transpose (swaps row/col arrays; O(nnz) copy).
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Iterate `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Set all stored values to `v` (keeping the pattern). SDDMM
    /// benchmarks use an all-ones sampling matrix.
    pub fn fill_values(&mut self, v: f64) {
        self.vals.fill(v);
    }

    /// Extract the sub-matrix with rows in `rows` and columns in `cols`,
    /// re-indexed to local (0-based) coordinates.
    pub fn extract_block(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> CooMatrix {
        let mut out = CooMatrix::empty(rows.len(), cols.len());
        for (i, j, v) in self.iter() {
            if rows.contains(&i) && cols.contains(&j) {
                out.push(i - rows.start, j - cols.start, v);
            }
        }
        out
    }

    /// Sum duplicate entries (same row and column), returning a matrix
    /// with unique coordinates in row-major order.
    pub fn sum_duplicates(&self) -> CooMatrix {
        let mut idx: Vec<usize> = (0..self.nnz()).collect();
        idx.sort_unstable_by_key(|&k| (self.rows[k], self.cols[k]));
        let mut out = CooMatrix::empty(self.nrows, self.ncols);
        for &k in &idx {
            let (r, c, v) = (self.rows[k], self.cols[k], self.vals[k]);
            if let (Some(&lr), Some(&lc)) = (out.rows.last(), out.cols.last()) {
                if lr == r && lc == c {
                    *out.vals.last_mut().unwrap() += v;
                    continue;
                }
            }
            out.rows.push(r);
            out.cols.push(c);
            out.vals.push(v);
        }
        out
    }

    /// Densify into a row-major `nrows × ncols` buffer (tests only; sums
    /// duplicates).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for (i, j, v) in self.iter() {
            d[i * self.ncols + j] += v;
        }
        d
    }
}

/// Three words per nonzero in flight, as in the paper's analysis of
/// sparse-shifting algorithms.
impl Payload for CooMatrix {
    fn words(&self) -> usize {
        3 * self.nnz()
    }
}

/// Sparse-aware wire encoding: one `nnz` header instead of three
/// per-array length prefixes, and row/column indices in the narrowest
/// width the block's dimensions admit (`u16` for blocks under 2¹⁶ a
/// side — the common case for per-rank blocks — else `u32`). The
/// sparse-shifting algorithms route whole COO blocks through this under
/// the wire backend, so the compression lands directly on the hot
/// `wire_bytes_sent` path. The modeled word count ([`Payload::words`])
/// stays the paper's 3 words per nonzero regardless of the encoded
/// width.
impl WirePayload for CooMatrix {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.nrows as u64).encode(buf);
        (self.ncols as u64).encode(buf);
        (self.nnz() as u64).encode(buf);
        let wide = self.nrows.max(self.ncols) > u16::MAX as usize + 1;
        buf.push(u8::from(wide));
        for idx in [&self.rows, &self.cols] {
            for &i in idx {
                if wide {
                    buf.extend_from_slice(&i.to_le_bytes());
                } else {
                    buf.extend_from_slice(&(i as u16).to_le_bytes());
                }
            }
        }
        for v in &self.vals {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        let nrows = r.read_len();
        let ncols = r.read_len();
        let nnz = r.read_len();
        let wide = r.u8() != 0;
        let idx = |r: &mut WireReader<'_>| -> Vec<u32> {
            (0..nnz)
                .map(|_| if wide { r.u32() } else { r.u16() as u32 })
                .collect()
        };
        let rows = idx(r);
        let cols = idx(r);
        let vals: Vec<f64> = (0..nnz).map(|_| r.f64()).collect();
        CooMatrix::from_triplets(nrows, ncols, rows, cols, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsk_comm::Payload;

    fn sample() -> CooMatrix {
        let mut m = CooMatrix::empty(3, 4);
        m.push(0, 1, 1.0);
        m.push(2, 3, 2.0);
        m.push(1, 0, 3.0);
        m
    }

    #[test]
    fn push_and_iter() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets[0], (0, 1, 1.0));
        assert_eq!(triplets[2], (1, 0, 3.0));
    }

    #[test]
    fn payload_is_three_words_per_nonzero() {
        assert_eq!(sample().words(), 9);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let t = sample().transpose();
        assert_eq!(t.nrows, 4);
        assert_eq!(t.ncols, 3);
        assert!(t.iter().any(|(i, j, v)| (i, j, v) == (1, 0, 1.0)));
        assert_eq!(t.transpose(), sample());
    }

    #[test]
    fn extract_block_reindexes() {
        let m = sample();
        let b = m.extract_block(1..3, 0..2);
        assert_eq!(b.nrows, 2);
        assert_eq!(b.ncols, 2);
        assert_eq!(b.nnz(), 1);
        assert_eq!(b.iter().next().unwrap(), (0, 0, 3.0));
    }

    #[test]
    fn sum_duplicates_merges() {
        let mut m = CooMatrix::empty(2, 2);
        m.push(0, 0, 1.0);
        m.push(1, 1, 2.0);
        m.push(0, 0, 4.0);
        let s = m.sum_duplicates();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), vec![5.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn to_dense_places_entries() {
        let d = sample().to_dense();
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2 * 4 + 3], 2.0);
        assert_eq!(d[4], 3.0);
        assert_eq!(d.iter().filter(|&&x| x != 0.0).count(), 3);
    }

    #[test]
    fn wire_roundtrip_preserves_triplets() {
        for m in [sample(), CooMatrix::empty(5, 7), {
            let mut one = CooMatrix::empty(1, 1);
            one.push(0, 0, -2.5);
            one
        }] {
            let bytes = m.to_wire();
            assert_eq!(CooMatrix::from_wire(&bytes), m);
        }
    }

    #[test]
    fn fill_values_keeps_pattern() {
        let mut m = sample();
        m.fill_values(7.0);
        assert!(m.vals.iter().all(|&v| v == 7.0));
        assert_eq!(m.nnz(), 3);
    }
}
