//! Compressed sparse row storage — the format local kernels compute on.

use crate::coo::CooMatrix;
use dsk_comm::{Payload, WirePayload, WireReader};

/// A sparse matrix in CSR form: `indptr[i]..indptr[i+1]` indexes the
/// column/value arrays for row `i`. Columns within a row are sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Convert from COO (duplicates are summed, columns sorted per row).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let nnz = coo.nnz();
        let mut indptr = vec![0usize; coo.nrows + 1];
        for &r in &coo.rows {
            indptr[r as usize + 1] += 1;
        }
        for i in 0..coo.nrows {
            indptr[i + 1] += indptr[i];
        }
        let mut indices = vec![0u32; nnz];
        let mut vals = vec![0.0; nnz];
        let mut next = indptr.clone();
        for (i, j, v) in coo.iter() {
            let k = next[i];
            indices[k] = j as u32;
            vals[k] = v;
            next[i] += 1;
        }
        // Sort each row by column, then merge duplicates in place.
        let mut out = CsrMatrix {
            nrows: coo.nrows,
            ncols: coo.ncols,
            indptr,
            indices,
            vals,
        };
        out.sort_and_dedup_rows();
        out
    }

    fn sort_and_dedup_rows(&mut self) {
        let mut new_indptr = vec![0usize; self.nrows + 1];
        let mut w = 0usize; // write cursor
        for i in 0..self.nrows {
            let (start, end) = (self.indptr[i], self.indptr[i + 1]);
            // Sort this row's (col, val) pairs by column.
            let mut pairs: Vec<(u32, f64)> = (start..end)
                .map(|k| (self.indices[k], self.vals[k]))
                .collect();
            pairs.sort_unstable_by_key(|p| p.0);
            new_indptr[i] = w;
            for (c, v) in pairs {
                if w > new_indptr[i] && self.indices[w - 1] == c {
                    self.vals[w - 1] += v;
                } else {
                    self.indices[w] = c;
                    self.vals[w] = v;
                    w += 1;
                }
            }
        }
        new_indptr[self.nrows] = w;
        self.indices.truncate(w);
        self.vals.truncate(w);
        self.indptr = new_indptr;
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, row-major.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values, aligned with [`CsrMatrix::indices`].
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable stored values (SDDMM writes its output here).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.vals[s..e])
    }

    /// Convert back to COO (row-major, sorted, deduplicated order).
    pub fn to_coo(&self) -> CooMatrix {
        let mut out = CooMatrix::empty(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                out.push(i, c as usize, v);
            }
        }
        out
    }

    /// The transpose as a new CSR matrix (i.e. the CSC view of `self`,
    /// materialized). `SpMMB`-style kernels (`Sᵀ · X`) run a plain SpMM
    /// on this.
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut indptr = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            indptr[j + 1] += indptr[j];
        }
        let mut indices = vec![0u32; nnz];
        let mut vals = vec![0.0; nnz];
        let mut next = indptr.clone();
        for i in 0..self.nrows {
            let (cols, rvals) = self.row(i);
            for (&c, &v) in cols.iter().zip(rvals) {
                let k = next[c as usize];
                indices[k] = i as u32;
                vals[k] = v;
                next[c as usize] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            vals,
        }
    }

    /// Replace the stored values with `vals` (same length/pattern).
    pub fn set_vals(&mut self, vals: Vec<f64>) {
        assert_eq!(vals.len(), self.nnz(), "value array length mismatch");
        self.vals = vals;
    }
}

/// A CSR block in flight costs one word per stored value, one per
/// column index, and one per row pointer — cheaper than COO's three
/// words per nonzero once rows average more than one entry, which is
/// why index-compressed transports (SpComm3D-style) favor it.
impl Payload for CsrMatrix {
    fn words(&self) -> usize {
        2 * self.nnz() + self.indptr.len()
    }
}

/// Sparse-aware wire encoding (SpComm3D-style index compression): the
/// row-pointer array travels **delta-encoded** as per-row lengths in the
/// narrowest width that fits (`u16`, else `u32` — never the in-memory 8
/// bytes per pointer), and column indices travel as `u16` when the
/// column dimension allows. The modeled word count
/// ([`Payload::words`]) is unchanged — compression shrinks only the
/// measured `wire_bytes_sent`, which the bench gate tracks.
///
/// Layout: `nrows u64 · ncols u64 · nnz u64 · row-width flag u8 ·
/// row lengths · index-width flag u8 · indices · values (f64 bits)`.
impl WirePayload for CsrMatrix {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.nrows as u64).encode(buf);
        (self.ncols as u64).encode(buf);
        (self.nnz() as u64).encode(buf);
        let wide_rows =
            (0..self.nrows).any(|i| self.indptr[i + 1] - self.indptr[i] > u16::MAX as usize);
        buf.push(u8::from(wide_rows));
        for i in 0..self.nrows {
            let len = self.indptr[i + 1] - self.indptr[i];
            if wide_rows {
                buf.extend_from_slice(&(len as u32).to_le_bytes());
            } else {
                buf.extend_from_slice(&(len as u16).to_le_bytes());
            }
        }
        let wide_cols = self.ncols > u16::MAX as usize + 1;
        buf.push(u8::from(wide_cols));
        for &c in &self.indices {
            if wide_cols {
                buf.extend_from_slice(&c.to_le_bytes());
            } else {
                buf.extend_from_slice(&(c as u16).to_le_bytes());
            }
        }
        for v in &self.vals {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Self {
        let nrows = r.read_len();
        let ncols = r.read_len();
        let nnz = r.read_len();
        let wide_rows = r.u8() != 0;
        let mut indptr = Vec::with_capacity(nrows + 1);
        indptr.push(0usize);
        let mut acc = 0usize;
        for _ in 0..nrows {
            acc += if wide_rows {
                r.u32() as usize
            } else {
                r.u16() as usize
            };
            indptr.push(acc);
        }
        assert_eq!(acc, nnz, "CSR wire block: row lengths disagree with nnz");
        let wide_cols = r.u8() != 0;
        let indices: Vec<u32> = (0..nnz)
            .map(|_| if wide_cols { r.u32() } else { r.u16() as u32 })
            .collect();
        let vals: Vec<f64> = (0..nnz).map(|_| r.f64()).collect();
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        // [ 0 1 0 ]
        // [ 3 0 2 ]
        CooMatrix::from_triplets(2, 3, vec![1, 0, 1], vec![2, 1, 0], vec![2.0, 1.0, 3.0])
    }

    #[test]
    fn from_coo_sorts_rows() {
        let m = CsrMatrix::from_coo(&sample_coo());
        assert_eq!(m.indptr(), &[0, 1, 3]);
        assert_eq!(m.row(1).0, &[0, 2]);
        assert_eq!(m.row(1).1, &[3.0, 2.0]);
    }

    #[test]
    fn coo_roundtrip_preserves_dense() {
        let coo = sample_coo();
        let rt = CsrMatrix::from_coo(&coo).to_coo();
        assert_eq!(rt.to_dense(), coo.to_dense());
    }

    #[test]
    fn wire_roundtrip_and_words() {
        for m in [
            CsrMatrix::from_coo(&sample_coo()),
            CsrMatrix::zeros(4, 9),
            CsrMatrix::from_coo(&CooMatrix::from_triplets(1, 1, vec![0], vec![0], vec![6.5])),
        ] {
            assert_eq!(m.words(), 2 * m.nnz() + m.nrows() + 1);
            let bytes = m.to_wire();
            assert_eq!(CsrMatrix::from_wire(&bytes), m);
        }
    }

    #[test]
    fn duplicates_are_summed() {
        let coo = CooMatrix::from_triplets(2, 2, vec![0, 0, 0], vec![1, 1, 0], vec![1.0, 4.0, 2.0]);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(0).0, &[0, 1]);
        assert_eq!(m.row(0).1, &[2.0, 5.0]);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let coo = sample_coo();
        let t = CsrMatrix::from_coo(&coo).transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        let td = t.to_coo().to_dense();
        let d = coo.to_dense();
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(td[j * 2 + i], d[i * 3 + j]);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = CsrMatrix::from_coo(&sample_coo());
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(4, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.indptr().len(), 5);
        for i in 0..4 {
            assert!(z.row(i).0.is_empty());
        }
    }
}
