//! Synthetic sparse-matrix generators.
//!
//! * [`erdos_renyi`] — fixed nonzeros per row, as in the paper's weak
//!   scaling setups (e.g. 2¹⁶ side, 32 nonzeros per row).
//! * [`rmat`] — recursive-matrix power-law graphs; our stand-in for the
//!   paper's SuiteSparse strong-scaling matrices (amazon-large, uk-2002,
//!   eukarya, arabic-2005, twitter7), whose defining property for these
//!   kernels is a skewed degree distribution at a given nnz/row ratio.
//!
//! All generators are deterministic functions of their seed, and the
//! Erdős–Rényi generator is *row-decomposable*: any rank can generate
//! exactly the rows it owns (each row's column set is seeded by
//! `(seed, row)`), so distributed benchmarks need no global staging.

use dsk_rng::Rng;

use crate::coo::CooMatrix;

/// Mix a base seed with a row id into an independent stream seed.
#[inline]
fn row_seed(seed: u64, row: usize) -> u64 {
    let mut z = seed ^ (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Erdős–Rényi–style matrix with exactly `nnz_per_row` distinct nonzeros
/// in every row, values uniform in `(0, 1]`.
pub fn erdos_renyi(nrows: usize, ncols: usize, nnz_per_row: usize, seed: u64) -> CooMatrix {
    erdos_renyi_rows(0..nrows, nrows, ncols, nnz_per_row, seed)
}

/// Generate only the rows in `rows` of the global `nrows × ncols`
/// Erdős–Rényi matrix with the given seed. Row indices in the result are
/// **global**. The union over a partition of `0..nrows` equals
/// [`erdos_renyi`] exactly.
pub fn erdos_renyi_rows(
    rows: std::ops::Range<usize>,
    nrows: usize,
    ncols: usize,
    nnz_per_row: usize,
    seed: u64,
) -> CooMatrix {
    assert!(rows.end <= nrows, "row range exceeds matrix");
    assert!(
        nnz_per_row <= ncols,
        "cannot place {nnz_per_row} distinct nonzeros in {ncols} columns"
    );
    let mut out = CooMatrix::empty(nrows, ncols);
    let cap = rows.len() * nnz_per_row;
    out.rows.reserve(cap);
    out.cols.reserve(cap);
    out.vals.reserve(cap);
    for i in rows {
        let mut rng = Rng::seed_from_u64(row_seed(seed, i));
        // Rejection-sample distinct columns; nnz_per_row ≪ ncols in all
        // workloads so this terminates fast. A sorted small vec is cheaper
        // than a HashSet at these sizes.
        let mut cols: Vec<u32> = Vec::with_capacity(nnz_per_row);
        while cols.len() < nnz_per_row {
            let c = rng.gen_below(ncols as u64) as u32;
            if let Err(pos) = cols.binary_search(&c) {
                cols.insert(pos, c);
            }
        }
        for c in cols {
            let v: f64 = rng.gen_f64();
            out.rows.push(i as u32);
            out.cols.push(c);
            out.vals.push(1.0 - v); // in (0, 1]
        }
    }
    out
}

/// Parameters of the R-MAT recursive quadrant generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// log2 of the (square) matrix side.
    pub scale: u32,
    /// Average edges per row (matrix nnz ≈ `edge_factor << scale`).
    pub edge_factor: usize,
    /// Quadrant probabilities (a, b, c); d = 1 - a - b - c.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Random seed.
    pub seed: u64,
}

impl RmatParams {
    /// Graph500-style defaults (a=0.57, b=c=0.19) at the given scale and
    /// edge factor: heavily skewed degree distribution.
    pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> Self {
        RmatParams {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }
}

/// R-MAT power-law random matrix: side `2^scale`, about
/// `edge_factor · 2^scale` nonzeros (duplicates merged, so slightly
/// fewer), values 1.0.
pub fn rmat(params: RmatParams) -> CooMatrix {
    let n = 1usize << params.scale;
    let nnz_target = params.edge_factor << params.scale;
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut out = CooMatrix::empty(n, n);
    out.rows.reserve(nnz_target);
    out.cols.reserve(nnz_target);
    out.vals.reserve(nnz_target);
    let (a, b, c) = (params.a, params.b, params.c);
    assert!(a + b + c <= 1.0 + 1e-9, "R-MAT probabilities exceed 1");
    for _ in 0..nnz_target {
        let (mut r0, mut c0) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let x: f64 = rng.gen_f64();
            if x < a {
                // upper-left: nothing
            } else if x < a + b {
                c0 += half;
            } else if x < a + b + c {
                r0 += half;
            } else {
                r0 += half;
                c0 += half;
            }
            half >>= 1;
        }
        out.push(r0, c0, 1.0);
    }
    // Merge duplicate edges, then restore 0/1 adjacency semantics
    // (sum_duplicates adds the values of repeated coordinates).
    let mut merged = out.sum_duplicates();
    merged.fill_values(1.0);
    merged
}

/// Shape statistics of one of the paper's strong-scaling matrices
/// (Table V), used to size R-MAT surrogates.
#[derive(Debug, Clone, Copy)]
pub struct RealMatrixProfile {
    /// Matrix name in the paper.
    pub name: &'static str,
    /// Rows (== columns) in the paper.
    pub paper_rows: usize,
    /// Nonzeros in the paper.
    pub paper_nnz: usize,
    /// Average nonzeros per row.
    pub nnz_per_row: usize,
}

/// The five matrices of the paper's Table V.
pub const PAPER_MATRICES: [RealMatrixProfile; 5] = [
    RealMatrixProfile {
        name: "amazon-large",
        paper_rows: 14_249_639,
        paper_nnz: 230_788_269,
        nnz_per_row: 16,
    },
    RealMatrixProfile {
        name: "uk-2002",
        paper_rows: 18_484_117,
        paper_nnz: 298_113_762,
        nnz_per_row: 16,
    },
    RealMatrixProfile {
        name: "eukarya",
        paper_rows: 3_243_106,
        paper_nnz: 359_744_161,
        nnz_per_row: 111,
    },
    RealMatrixProfile {
        name: "arabic-2005",
        paper_rows: 22_744_080,
        paper_nnz: 639_999_458,
        nnz_per_row: 28,
    },
    RealMatrixProfile {
        name: "twitter7",
        paper_rows: 41_652_230,
        paper_nnz: 1_468_365_182,
        nnz_per_row: 35,
    },
];

/// Build the R-MAT surrogate for a paper matrix at `scale` (side
/// `2^scale`), preserving its nnz-per-row ratio.
pub fn surrogate(profile: &RealMatrixProfile, scale: u32, seed: u64) -> CooMatrix {
    rmat(RmatParams::graph500(scale, profile.nnz_per_row, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_has_exact_row_counts() {
        let m = erdos_renyi(32, 64, 4, 7);
        assert_eq!(m.nnz(), 32 * 4);
        let mut per_row = vec![0usize; 32];
        for (i, j, v) in m.iter() {
            per_row[i] += 1;
            assert!(j < 64);
            assert!(v > 0.0 && v <= 1.0);
        }
        assert!(per_row.iter().all(|&c| c == 4));
    }

    #[test]
    fn erdos_renyi_columns_distinct_within_row() {
        let m = erdos_renyi(16, 16, 8, 3);
        for i in 0..16 {
            let mut cols: Vec<u32> = m
                .iter()
                .filter(|&(r, _, _)| r == i)
                .map(|(_, c, _)| c as u32)
                .collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), 8, "row {i} has duplicate columns");
        }
    }

    #[test]
    fn erdos_renyi_is_row_decomposable() {
        let whole = erdos_renyi(20, 40, 3, 99);
        let top = erdos_renyi_rows(0..11, 20, 40, 3, 99);
        let bottom = erdos_renyi_rows(11..20, 20, 40, 3, 99);
        let mut merged = top;
        merged.rows.extend_from_slice(&bottom.rows);
        merged.cols.extend_from_slice(&bottom.cols);
        merged.vals.extend_from_slice(&bottom.vals);
        assert_eq!(merged.to_dense(), whole.to_dense());
    }

    #[test]
    fn rmat_shape_and_determinism() {
        let p = RmatParams::graph500(6, 8, 5);
        let m1 = rmat(p);
        let m2 = rmat(p);
        assert_eq!(m1, m2);
        assert_eq!(m1.nrows, 64);
        // Duplicates merged: nnz at most the target, but close for sparse
        // settings.
        assert!(m1.nnz() <= 8 * 64);
        assert!(m1.nnz() > 4 * 64, "too many duplicates: {}", m1.nnz());
    }

    #[test]
    fn rmat_is_skewed() {
        let m = rmat(RmatParams::graph500(8, 8, 11));
        let mut per_row = vec![0usize; m.nrows];
        for (i, _, _) in m.iter() {
            per_row[i] += 1;
        }
        let max = *per_row.iter().max().unwrap();
        let mean = m.nnz() as f64 / m.nrows as f64;
        assert!(
            max as f64 > 4.0 * mean,
            "R-MAT should be heavy-tailed: max {max}, mean {mean}"
        );
    }

    #[test]
    fn paper_matrix_profiles_are_consistent() {
        for p in &PAPER_MATRICES {
            let ratio = p.paper_nnz as f64 / p.paper_rows as f64;
            assert!(
                (ratio - p.nnz_per_row as f64).abs() / ratio < 0.30,
                "{}: nnz/row {} vs recorded {}",
                p.name,
                ratio,
                p.nnz_per_row
            );
        }
    }
}
