//! Matrix Market (`.mtx`) coordinate-format I/O.
//!
//! Supports the subset of the format the SuiteSparse collection uses for
//! the paper's matrices: `matrix coordinate` with `real`, `integer`, or
//! `pattern` fields and `general` or `symmetric` symmetry. Symmetric
//! inputs are expanded (mirrored) on read.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::coo::CooMatrix;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file violates the Matrix Market format.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<io::Error> for MmError {
    fn from(e: io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a Matrix Market coordinate file.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<CooMatrix, MmError> {
    let f = File::open(path)?;
    read_matrix_market_from(BufReader::new(f))
}

/// Read from any buffered reader (for in-memory tests).
pub fn read_matrix_market_from(reader: impl BufRead) -> Result<CooMatrix, MmError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err("only coordinate format is supported"));
    }
    let value_kind = fields[3];
    if !matches!(value_kind, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type {value_kind}")));
    }
    let symmetry = fields[4];
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry {symmetry}")));
    }

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must have 3 numbers"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut out = CooMatrix::empty(nrows, ncols);
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("missing col index"))?
            .parse()
            .map_err(|_| parse_err("bad col index"))?;
        let v: f64 = if value_kind == "pattern" {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("index ({i}, {j}) out of bounds")));
        }
        out.push(i - 1, j - 1, v);
        if symmetry == "symmetric" && i != j {
            out.push(j - 1, i - 1, v);
        }
        read += 1;
    }
    if read != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {read}")));
    }
    Ok(out)
}

/// Write a COO matrix as `matrix coordinate real general`.
pub fn write_matrix_market(path: impl AsRef<Path>, m: &CooMatrix) -> Result<(), MmError> {
    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows, m.ncols, m.nnz())?;
    for (i, j, v) in m.iter() {
        writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_through_file() {
        let m = crate::gen::erdos_renyi(10, 12, 3, 5);
        let dir = std::env::temp_dir().join("dsk_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        write_matrix_market(&path, &m).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert_eq!(back.nrows, 10);
        assert_eq!(back.ncols, 12);
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    fn reads_pattern_matrices() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% comment\n2 2 2\n1 1\n2 2\n";
        let m = read_matrix_market_from(Cursor::new(text)).unwrap();
        assert_eq!(m.to_dense(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn expands_symmetric_matrices() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let m = read_matrix_market_from(Cursor::new(text)).unwrap();
        let d = m.to_dense();
        assert_eq!(d[3], 5.0);
        assert_eq!(d[1], 5.0);
        assert_eq!(d[2 * 3 + 2], 1.0);
        assert_eq!(m.nnz(), 3); // diagonal not mirrored
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(read_matrix_market_from(Cursor::new("nonsense\n1 1 0\n")).is_err());
        assert!(read_matrix_market_from(Cursor::new(
            "%%MatrixMarket matrix array real general\n1 1 0\n"
        ))
        .is_err());
    }

    #[test]
    fn rejects_out_of_bounds_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_from(Cursor::new(text)).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market_from(Cursor::new(text)).is_err());
    }
}
