//! # dsk-sparse — sparse matrices, generators, and partitioning
//!
//! The sparse-matrix substrate for the distributed kernels: COO and CSR
//! storage, transposition, synthetic workload generators (Erdős–Rényi as
//! in the paper's weak-scaling study, R-MAT as the stand-in for its
//! SuiteSparse strong-scaling matrices), random row/column permutation
//! for load balancing (applied by the paper to every matrix it reads),
//! 1D/2D block partitioning used by the Table II data distributions, and
//! Matrix Market I/O. The paper uses CombBLAS for this role.

// Indexed `for i in 0..n` loops over CSR index structures are the
// domain idiom throughout this workspace; the iterator rewrites
// clippy suggests obscure the sparse-index arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod coo;
pub mod csr;
pub mod gen;
pub mod io;
pub mod partition;
pub mod permute;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
