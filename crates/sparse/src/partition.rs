//! Block partitioning of index spaces and sparse matrices.
//!
//! Every distribution in the paper's Table II is assembled from
//! contiguous block ranges of rows/columns. The convention here matches
//! `dsk_comm::collectives::block_ranges`: `total` elements split into
//! `parts` near-equal contiguous ranges, the first `total % parts` of
//! which are one element longer.

use crate::coo::CooMatrix;
use std::ops::Range;

/// The `idx`-th of `parts` near-equal contiguous ranges tiling
/// `0..total`.
pub fn block_range(total: usize, parts: usize, idx: usize) -> Range<usize> {
    assert!(idx < parts, "block index {idx} out of {parts}");
    let q = total / parts;
    let r = total % parts;
    let start = idx * q + idx.min(r);
    let len = q + usize::from(idx < r);
    start..start + len
}

/// All `parts` ranges of the decomposition.
pub fn block_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    (0..parts).map(|i| block_range(total, parts, i)).collect()
}

/// Which block of the decomposition owns element `index`.
pub fn block_owner(total: usize, parts: usize, index: usize) -> usize {
    debug_assert!(index < total);
    let q = total / parts;
    let r = total % parts;
    let boundary = r * (q + 1);
    if index < boundary {
        index / (q + 1)
    } else {
        r + (index - boundary) / q.max(1)
    }
}

/// Partition a COO matrix into a `row_parts × col_parts` grid of blocks
/// with local (block-relative) indices, in a single pass over the
/// nonzeros. `grid[i][j]` is block `(i, j)`.
pub fn partition_2d(m: &CooMatrix, row_parts: usize, col_parts: usize) -> Vec<Vec<CooMatrix>> {
    partition_by_ranges(
        m,
        &block_ranges(m.nrows, row_parts),
        &block_ranges(m.ncols, col_parts),
    )
}

/// Partition a COO matrix by explicit contiguous row/column ranges
/// (which must tile `0..nrows` / `0..ncols` in order). Used by data
/// distributions whose block boundaries are not the near-equal default
/// (e.g. macro block rows that must align with unions of finer blocks).
pub fn partition_by_ranges(
    m: &CooMatrix,
    row_ranges: &[Range<usize>],
    col_ranges: &[Range<usize>],
) -> Vec<Vec<CooMatrix>> {
    debug_assert!(ranges_tile(row_ranges, m.nrows), "row ranges must tile");
    debug_assert!(ranges_tile(col_ranges, m.ncols), "col ranges must tile");
    let mut grid: Vec<Vec<CooMatrix>> = row_ranges
        .iter()
        .map(|rr| {
            col_ranges
                .iter()
                .map(|cr| CooMatrix::empty(rr.len(), cr.len()))
                .collect()
        })
        .collect();
    let row_starts: Vec<usize> = row_ranges.iter().map(|r| r.start).collect();
    let col_starts: Vec<usize> = col_ranges.iter().map(|r| r.start).collect();
    for (i, j, v) in m.iter() {
        let bi = range_owner(&row_starts, i);
        let bj = range_owner(&col_starts, j);
        grid[bi][bj].push(i - row_ranges[bi].start, j - col_ranges[bj].start, v);
    }
    grid
}

/// Which of the ordered ranges (given by their start offsets) contains
/// `index`.
fn range_owner(starts: &[usize], index: usize) -> usize {
    match starts.binary_search(&index) {
        Ok(k) => k,
        Err(k) => k - 1,
    }
}

fn ranges_tile(ranges: &[Range<usize>], total: usize) -> bool {
    if ranges.is_empty() {
        return total == 0;
    }
    ranges[0].start == 0
        && ranges.last().unwrap().end == total
        && ranges.windows(2).all(|w| w[0].end == w[1].start)
}

/// Partition into block rows (local indices).
pub fn partition_rows(m: &CooMatrix, parts: usize) -> Vec<CooMatrix> {
    partition_2d(m, parts, 1)
        .into_iter()
        .map(|mut v| v.pop().unwrap())
        .collect()
}

/// Partition into block columns (local indices).
pub fn partition_cols(m: &CooMatrix, parts: usize) -> Vec<CooMatrix> {
    let mut grid = partition_2d(m, 1, parts);
    grid.pop().unwrap()
}

/// Re-assemble a 2D block partition (inverse of [`partition_2d`]); used
/// by tests and result gathering.
pub fn unpartition_2d(grid: &[Vec<CooMatrix>], nrows: usize, ncols: usize) -> CooMatrix {
    let row_parts = grid.len();
    let col_parts = grid[0].len();
    let rranges = block_ranges(nrows, row_parts);
    let cranges = block_ranges(ncols, col_parts);
    let mut out = CooMatrix::empty(nrows, ncols);
    for (bi, row) in grid.iter().enumerate() {
        assert_eq!(row.len(), col_parts, "ragged block grid");
        for (bj, blk) in row.iter().enumerate() {
            for (i, j, v) in blk.iter() {
                out.push(rranges[bi].start + i, cranges[bj].start + j, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::erdos_renyi;

    #[test]
    fn block_range_tiles_domain() {
        for total in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 2, 3, 7] {
                let rs = block_ranges(total, parts);
                assert_eq!(rs[0].start, 0);
                assert_eq!(rs.last().unwrap().end, total);
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn block_owner_agrees_with_ranges() {
        for total in [5usize, 16, 33] {
            for parts in [1usize, 2, 4, 5] {
                let rs = block_ranges(total, parts);
                for i in 0..total {
                    let o = block_owner(total, parts, i);
                    assert!(rs[o].contains(&i), "total={total} parts={parts} i={i}");
                }
            }
        }
    }

    #[test]
    fn partition_roundtrip() {
        let m = erdos_renyi(19, 23, 5, 77);
        for (rp, cp) in [(1, 1), (2, 3), (4, 4), (19, 23)] {
            let grid = partition_2d(&m, rp, cp);
            let back = unpartition_2d(&grid, 19, 23);
            assert_eq!(back.to_dense(), m.to_dense());
        }
    }

    #[test]
    fn partition_preserves_nnz_exactly_once() {
        let m = erdos_renyi(16, 16, 4, 5);
        let grid = partition_2d(&m, 4, 2);
        let total: usize = grid.iter().flatten().map(CooMatrix::nnz).sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn partition_by_ranges_with_uneven_blocks() {
        let m = erdos_renyi(10, 10, 3, 8);
        let rows = vec![0..7usize, 7..10];
        let cols = vec![0..2usize, 2..9, 9..10];
        let grid = partition_by_ranges(&m, &rows, &cols);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].len(), 3);
        assert_eq!(grid[1][1].nrows, 3);
        assert_eq!(grid[1][1].ncols, 7);
        let total: usize = grid.iter().flatten().map(CooMatrix::nnz).sum();
        assert_eq!(total, m.nnz());
        // Rebuild and compare.
        let mut back = CooMatrix::empty(10, 10);
        for (bi, rr) in rows.iter().enumerate() {
            for (bj, cr) in cols.iter().enumerate() {
                for (i, j, v) in grid[bi][bj].iter() {
                    back.push(rr.start + i, cr.start + j, v);
                }
            }
        }
        assert_eq!(back.to_dense(), m.to_dense());
    }

    #[test]
    fn row_and_col_partitions() {
        let m = erdos_renyi(12, 12, 3, 2);
        let rows = partition_rows(&m, 3);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.iter().map(CooMatrix::nnz).sum::<usize>(), m.nnz());
        assert!(rows.iter().all(|b| b.nrows == 4 && b.ncols == 12));
        let cols = partition_cols(&m, 4);
        assert_eq!(cols.len(), 4);
        assert!(cols.iter().all(|b| b.nrows == 12 && b.ncols == 3));
        assert_eq!(cols.iter().map(CooMatrix::nnz).sum::<usize>(), m.nnz());
    }
}
