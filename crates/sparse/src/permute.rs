//! Random row/column permutation for load balancing.
//!
//! Sparsity-agnostic bulk algorithms rely on a random permutation of the
//! sparse matrix to balance nonzeros across blocks (the paper applies one
//! to every matrix it reads). A [`Permutation`] is a bijection on
//! `0..n`; applying it to a matrix relabels indices.

use dsk_rng::Rng;

use crate::coo::CooMatrix;

/// A bijection on `0..len`, stored as the forward image table
/// (`perm[i]` = new index of old index `i`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `0..len`.
    pub fn identity(len: usize) -> Self {
        Permutation {
            forward: (0..len as u32).collect(),
        }
    }

    /// A uniformly random permutation of `0..len`, deterministic in
    /// `seed`.
    pub fn random(len: usize, seed: u64) -> Self {
        let mut forward: Vec<u32> = (0..len as u32).collect();
        let mut rng = Rng::seed_from_u64(seed);
        rng.shuffle(&mut forward);
        Permutation { forward }
    }

    /// Build from an explicit image table (must be a bijection).
    pub fn from_forward(forward: Vec<u32>) -> Self {
        let mut seen = vec![false; forward.len()];
        for &x in &forward {
            assert!(
                (x as usize) < forward.len() && !seen[x as usize],
                "not a permutation"
            );
            seen[x as usize] = true;
        }
        Permutation { forward }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Image of `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i] as usize
    }

    /// The inverse bijection.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.forward.len()];
        for (i, &x) in self.forward.iter().enumerate() {
            inv[x as usize] = i as u32;
        }
        Permutation { forward: inv }
    }

    /// Apply to the rows of a dense row-major buffer of `ncols`-wide
    /// rows: row `i` of the input lands at row `apply(i)` of the output.
    pub fn apply_rows_flat(&self, data: &[f64], ncols: usize) -> Vec<f64> {
        assert_eq!(data.len(), self.len() * ncols);
        let mut out = vec![0.0; data.len()];
        for i in 0..self.len() {
            let dst = self.apply(i);
            out[dst * ncols..(dst + 1) * ncols].copy_from_slice(&data[i * ncols..(i + 1) * ncols]);
        }
        out
    }
}

/// Relabel rows and columns of `m` by the given permutations
/// (`row_perm.len() == m.nrows`, `col_perm.len() == m.ncols`).
pub fn permute_coo(m: &CooMatrix, row_perm: &Permutation, col_perm: &Permutation) -> CooMatrix {
    assert_eq!(row_perm.len(), m.nrows, "row permutation length mismatch");
    assert_eq!(col_perm.len(), m.ncols, "col permutation length mismatch");
    let rows = m
        .rows
        .iter()
        .map(|&r| row_perm.apply(r as usize) as u32)
        .collect();
    let cols = m
        .cols
        .iter()
        .map(|&c| col_perm.apply(c as usize) as u32)
        .collect();
    CooMatrix {
        nrows: m.nrows,
        ncols: m.ncols,
        rows,
        cols,
        vals: m.vals.clone(),
    }
}

/// Symmetrically permute a square matrix with one random permutation on
/// both sides — the paper's load-balancing transformation.
pub fn random_symmetric_permute(m: &CooMatrix, seed: u64) -> (CooMatrix, Permutation) {
    assert_eq!(m.nrows, m.ncols, "symmetric permutation needs square");
    let p = Permutation::random(m.nrows, seed);
    (permute_coo(m, &p, &p), p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.apply(i), i);
        }
    }

    #[test]
    fn random_is_bijection() {
        let p = Permutation::random(100, 3);
        let mut seen = [false; 100];
        for i in 0..100 {
            let x = p.apply(i);
            assert!(!seen[x]);
            seen[x] = true;
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::random(64, 9);
        let inv = p.inverse();
        for i in 0..64 {
            assert_eq!(inv.apply(p.apply(i)), i);
            assert_eq!(p.apply(inv.apply(i)), i);
        }
    }

    #[test]
    fn permute_coo_preserves_values_and_structure() {
        let m = crate::gen::erdos_renyi(10, 10, 3, 4);
        let (pm, p) = random_symmetric_permute(&m, 8);
        assert_eq!(pm.nnz(), m.nnz());
        let d = m.to_dense();
        let pd = pm.to_dense();
        for (i, j, _) in m.iter() {
            assert_eq!(pd[p.apply(i) * 10 + p.apply(j)], d[i * 10 + j]);
        }
    }

    #[test]
    fn apply_rows_flat_moves_rows() {
        let p = Permutation::from_forward(vec![2, 0, 1]);
        let data = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let out = p.apply_rows_flat(&data, 2);
        assert_eq!(out, vec![2.0, 2.0, 3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_forward_rejects_duplicates() {
        let _ = Permutation::from_forward(vec![0, 0, 1]);
    }
}
