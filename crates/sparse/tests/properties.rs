//! Randomized property tests for the sparse substrate: format
//! round-trips, generator invariants, permutation group laws, and
//! partition partition-of-unity. Cases are drawn from a seeded PRNG so
//! failures reproduce exactly.

use dsk_rng::Rng;
use dsk_sparse::gen::{self, RmatParams};
use dsk_sparse::io;
use dsk_sparse::partition;
use dsk_sparse::permute::{permute_coo, Permutation};
use dsk_sparse::{CooMatrix, CsrMatrix};

const CASES: usize = 24;

/// Matrix Market write/read is lossless for arbitrary generated
/// matrices.
#[test]
fn matrix_market_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x51AA);
    for _ in 0..CASES {
        let m = 1 + rng.gen_index(29);
        let n = 1 + rng.gen_index(29);
        let seed = rng.next_u64() % 500;
        let nnz_row = (1 + seed as usize % 4).min(n);
        let coo = gen::erdos_renyi(m, n, nnz_row, seed);
        let mut buf = Vec::new();
        {
            use std::io::Write;
            writeln!(buf, "%%MatrixMarket matrix coordinate real general").unwrap();
            writeln!(buf, "{} {} {}", coo.nrows, coo.ncols, coo.nnz()).unwrap();
            for (i, j, v) in coo.iter() {
                writeln!(buf, "{} {} {:.17e}", i + 1, j + 1, v).unwrap();
            }
        }
        let back = io::read_matrix_market_from(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.to_dense(), coo.to_dense());
    }
}

/// Permutations form a group: (p⁻¹∘p) = id on matrices.
#[test]
fn permutation_inverse_restores() {
    let mut rng = Rng::seed_from_u64(0x51AB);
    for _ in 0..CASES {
        let m = 1 + rng.gen_index(29);
        let seed = rng.next_u64() % 500;
        let coo = gen::erdos_renyi(m, m, 2.min(m), seed);
        let p = Permutation::random(m, seed + 1);
        let forward = permute_coo(&coo, &p, &p);
        let back = permute_coo(&forward, &p.inverse(), &p.inverse());
        assert_eq!(back.to_dense(), coo.to_dense());
    }
}

/// Every partition owns each nonzero exactly once and re-assembles.
#[test]
fn partition_of_unity() {
    let mut rng = Rng::seed_from_u64(0x51AC);
    for _ in 0..CASES {
        let m = 1 + rng.gen_index(39);
        let n = 1 + rng.gen_index(39);
        let rp = 1 + rng.gen_index(5);
        let cp = 1 + rng.gen_index(5);
        let seed = rng.next_u64() % 500;
        let nnz_row = (1 + seed as usize % 3).min(n);
        let coo = gen::erdos_renyi(m, n, nnz_row, seed);
        let grid = partition::partition_2d(&coo, rp, cp);
        let total: usize = grid.iter().flatten().map(CooMatrix::nnz).sum();
        assert_eq!(total, coo.nnz());
        let back = partition::unpartition_2d(&grid, m, n);
        assert_eq!(back.to_dense(), coo.to_dense());
    }
}

/// Uneven explicit ranges also form a partition of unity.
#[test]
fn ranged_partition_of_unity() {
    let mut rng = Rng::seed_from_u64(0x51AD);
    for _ in 0..CASES {
        let m = 4 + rng.gen_index(36);
        let n = 4 + rng.gen_index(36);
        let cut_r = 1 + rng.gen_index(m - 1);
        let cut_c = 1 + rng.gen_index(n - 1);
        let seed = rng.next_u64() % 500;
        let coo = gen::erdos_renyi(m, n, 2.min(n), seed);
        let rows = vec![0..cut_r, cut_r..m];
        let cols = vec![0..cut_c, cut_c..n];
        let grid = partition::partition_by_ranges(&coo, &rows, &cols);
        let total: usize = grid.iter().flatten().map(CooMatrix::nnz).sum();
        assert_eq!(total, coo.nnz());
        // Local indices must be in bounds of their blocks.
        for (bi, row) in grid.iter().enumerate() {
            for (bj, blk) in row.iter().enumerate() {
                assert_eq!(blk.nrows, rows[bi].len());
                assert_eq!(blk.ncols, cols[bj].len());
                for (i, j, _) in blk.iter() {
                    assert!(i < blk.nrows && j < blk.ncols);
                }
            }
        }
    }
}

/// CSR from shuffled COO equals CSR from sorted COO (order
/// independence).
#[test]
fn csr_is_order_independent() {
    let mut rng = Rng::seed_from_u64(0x51AE);
    for _ in 0..CASES {
        let m = 1 + rng.gen_index(19);
        let n = 1 + rng.gen_index(19);
        let seed = rng.next_u64() % 500;
        let nnz_row = (1 + seed as usize % 4).min(n);
        let coo = gen::erdos_renyi(m, n, nnz_row, seed);
        // Reverse the triplet order.
        let rev = CooMatrix::from_triplets(
            m,
            n,
            coo.rows.iter().rev().copied().collect(),
            coo.cols.iter().rev().copied().collect(),
            coo.vals.iter().rev().copied().collect(),
        );
        assert_eq!(CsrMatrix::from_coo(&coo), CsrMatrix::from_coo(&rev));
    }
}

/// R-MAT respects its shape contract and determinism.
#[test]
fn rmat_contract() {
    let mut rng = Rng::seed_from_u64(0x51AF);
    for _ in 0..CASES {
        let scale = 4 + (rng.gen_index(5) as u32);
        let ef = 1 + rng.gen_index(7);
        let seed = rng.next_u64() % 200;
        let p = RmatParams::graph500(scale, ef, seed);
        let m1 = gen::rmat(p);
        let m2 = gen::rmat(p);
        assert_eq!(&m1, &m2);
        assert_eq!(m1.nrows, 1usize << scale);
        assert!(m1.nnz() <= ef << scale);
        for (i, j, v) in m1.iter() {
            assert!(i < m1.nrows && j < m1.ncols);
            assert_eq!(v, 1.0);
        }
    }
}

/// Erdős–Rényi row decomposability holds for arbitrary split points.
#[test]
fn er_row_decomposable() {
    let mut rng = Rng::seed_from_u64(0x51B0);
    for _ in 0..CASES {
        let m = 2 + rng.gen_index(38);
        let n = 4 + rng.gen_index(36);
        let cut = rng.gen_index(m);
        let seed = rng.next_u64() % 500;
        let nnz_row = 2.min(n);
        let whole = gen::erdos_renyi(m, n, nnz_row, seed);
        let top = gen::erdos_renyi_rows(0..cut, m, n, nnz_row, seed);
        let bottom = gen::erdos_renyi_rows(cut..m, m, n, nnz_row, seed);
        let mut merged = top;
        merged.rows.extend_from_slice(&bottom.rows);
        merged.cols.extend_from_slice(&bottom.cols);
        merged.vals.extend_from_slice(&bottom.vals);
        assert_eq!(merged.to_dense(), whole.to_dense());
    }
}
