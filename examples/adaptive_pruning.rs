//! Adaptive ALS under aggressive pruning: the effective sparsity
//! crosses a Figure 6 phase boundary mid-run, and the session migrates
//! the live factors to the family that is now predicted cheapest —
//! printing every replan decision and the modeled time the migration
//! saves over the remaining iterations.
//!
//! The setup mirrors the SparCML observation that sparsity evolves over
//! training: the run starts dense-side (φ = nnz/(n·r) well above the
//! 1.5D crossover, so dense shifting wins) and after the first sweep
//! the application keeps only its strongest interactions
//! (top-magnitude sparsification). The *observed* φ collapses to the
//! sparse side;
//! `Session::replan` re-runs the planner against the observed problem
//! and migrates A/B iterates and R values to the sparse-shifting
//! family with zero loss discontinuity.
//!
//! ```text
//! cargo run --release --example adaptive_pruning
//! ```

use std::sync::Arc;

use distributed_sparse_kernels::apps::{AlsConfig, AlsSolver, AppEngine};
use distributed_sparse_kernels::comm::{MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::session::{ReplanPolicy, Session};
use distributed_sparse_kernels::core::{AlgorithmFamily, GlobalProblem};
use distributed_sparse_kernels::dense::ops::row_dot;
use distributed_sparse_kernels::dense::Mat;
use distributed_sparse_kernels::sparse::gen;

fn main() {
    // Plant a low-rank model with *many* observations per user:
    // φ = 24/16 = 1.5, squarely in dense-shifting territory at first.
    let (users, items, rank) = (1024usize, 1024usize, 16usize);
    let a_true = Mat::random(users, rank, 1);
    let b_true = Mat::random(items, rank, 2);
    let mut s = gen::erdos_renyi(users, items, 24, 3);
    s.vals = s
        .iter()
        .map(|(i, j, _)| row_dot(&a_true, i, &b_true, j))
        .collect();
    let prob = Arc::new(GlobalProblem::new(
        s,
        Mat::random(users, rank, 4),
        Mat::random(items, rank, 5),
    ));
    println!(
        "problem: {}×{} with {} observations, r = {rank}, φ = {:.3} (dense side)",
        users,
        items,
        prob.nnz(),
        prob.phi()
    );

    let p = 16;
    let cfg = AlsConfig {
        lambda: 0.02,
        cg_iters: 10,
        sweeps: 1,
        track_loss: false,
    };
    let policy = ReplanPolicy {
        hysteresis: 1.10,
        ..ReplanPolicy::default()
    };
    // The remaining work after the migration: one more sweep of batched
    // CG = 2 · cg_iters fused calls.
    let remaining_fused_calls = 2 * cfg.cg_iters;

    // Bandwidth-only model: α = 0, β = 1 s/word, so every "seconds"
    // figure below reads directly as a word count — the quantity the
    // paper's Table III analysis ranks algorithms by.
    let world = SimWorld::new(p, MachineModel::bandwidth_only());
    let outcomes = world.run(move |comm| {
        let mut engine = AppEngine::new(
            Session::builder_arc(Arc::clone(&prob))
                .family(AlgorithmFamily::DenseShift15)
                .build(comm),
        );
        let solver = AlsSolver::new(cfg);

        // Sweep 1 on the dense-shifting plan.
        let plan0 = engine.session().plan();
        solver.solve(&mut engine);
        let loss_after_sweep1 = engine.loss();

        // Aggressive pruning: the loss() call left the raw dots in R;
        // keep only the strongest interactions (top-magnitude
        // sparsification, as in attention pruning / SparCML-style
        // gradient sparsification) and zero the rest.
        let threshold = 2.7;
        engine.session_mut().map_r(&mut |v| {
            if v.abs() < threshold {
                0.0
            } else {
                v
            }
        });
        let loss_before_replan = engine.session().stored_loss();

        // Re-plan against the observed (pruned) problem.
        let event = engine.replan(&policy);
        let loss_after_replan = engine.session().stored_loss();

        // Sweep 2 continues on whatever family the session now runs.
        solver.solve(&mut engine);
        let final_loss = engine.loss();
        let migration_stats = {
            let st = engine.session().stats();
            let c = st.phase(Phase::Migration);
            (c.words_sent, c.modeled_s)
        };
        (
            plan0,
            event,
            loss_after_sweep1,
            loss_before_replan,
            loss_after_replan,
            final_loss,
            migration_stats,
        )
    });

    let (plan0, event, l1, lb, la, lf, (mig_words, mig_s)) = &outcomes[0].value;
    println!("\ninitial plan: {} at c = {}", plan0.id.label(), plan0.c);
    println!("loss after sweep 1: {l1:.4e}");
    println!(
        "\npruning dropped the observed nnz to {} (φ = {:.4}) — replan says:",
        event.observed_nnz, event.observed_phi
    );
    println!(
        "  {} (c={}) → {} (c={}), predicted {:.3e}s → {:.3e}s per call \
         [migrated: {}]",
        event.from.id.label(),
        event.from.c,
        event.to.id.label(),
        event.to.c,
        event.predicted_from_s.unwrap_or(f64::NAN),
        event.predicted_to_s,
        event.migrated,
    );
    assert!(event.migrated, "the φ collapse must trigger a migration");
    assert_ne!(event.from.id, event.to.id);
    println!(
        "  loss continuity across the migration: {lb:.6e} → {la:.6e} (Δ = {:.1e})",
        (lb - la).abs()
    );
    let per_call = event.predicted_saving_s().unwrap_or(0.0);
    let saved = per_call * remaining_fused_calls as f64;
    let break_even = (mig_s / per_call.max(1e-300)).ceil();
    println!(
        "  modeled time saved over the remaining {remaining_fused_calls} fused calls: \
         {saved:.3e}s (migration itself moved {mig_words} words, {mig_s:.3e}s modeled — \
         breaks even after {break_even} call(s))"
    );
    assert!(
        saved > *mig_s,
        "the migration must pay for itself within the remaining sweep"
    );
    println!(
        "\nfinal loss after sweep 2 on {}: {lf:.4e}",
        event.to.id.label()
    );
    assert!(lf < l1, "the second sweep must keep improving");

    // ------------------------------------------------------------------
    // Part 2: the same adaptation, fully automatic. No replan call
    // anywhere — the session carries a `ReplanPolicy::every_n_calls`
    // cadence with a drift gate, and migrates itself when the pruning
    // between fused calls collapses the observed φ.
    // ------------------------------------------------------------------
    println!("\n--- automatic trigger (ReplanPolicy::every_n_calls) ---");
    let prob2 = Arc::new(GlobalProblem::new(
        {
            let mut s = gen::erdos_renyi(users, items, 24, 6);
            s.vals = s
                .iter()
                .map(|(i, j, _)| row_dot(&a_true, i, &b_true, j))
                .collect();
            s
        },
        Mat::random(users, rank, 7),
        Mat::random(items, rank, 8),
    ));
    let world = SimWorld::new(p, MachineModel::bandwidth_only());
    let outcomes = world.run(move |comm| {
        let auto = ReplanPolicy {
            hysteresis: 1.10,
            ..ReplanPolicy::every_n_calls(4).with_drift_ratio(1.5)
        };
        let mut session = Session::builder_arc(Arc::clone(&prob2))
            .family(AlgorithmFamily::DenseShift15)
            .auto_replan(auto)
            .build(comm);
        // A plain fused-iteration loop: the application never mentions
        // re-planning again. After call 6 it prunes; the session's
        // call-8 cadence point observes the collapse and migrates.
        for call in 1..=12u64 {
            let _ = session.fused_mm_b(None, distributed_sparse_kernels::core::Sampling::Values);
            if call == 6 {
                session.worker_mut().sddmm();
                session.map_r(&mut |v| if v.abs() < 2.7 { 0.0 } else { v });
            }
        }
        let log: Vec<_> = session
            .replan_log()
            .iter()
            .map(|e| (e.at_call, e.migrated, e.to.id.label().to_string()))
            .collect();
        (
            log,
            session.migrations(),
            session.plan().id.label().to_string(),
        )
    });
    let (log, migrations, final_family) = &outcomes[0].value;
    for (at_call, migrated, to) in log {
        println!("  call {at_call}: auto-replan → {to} (migrated: {migrated})");
    }
    assert_eq!(*migrations, 1, "the automatic cadence must migrate once");
    assert!(
        log.iter().all(|(at, _, _)| at % 4 == 0),
        "auto-replans only fire at the every-4-calls cadence"
    );
    println!("  session finished on {final_family} with no explicit replan call");

    println!("\nadaptive_pruning OK");
}
