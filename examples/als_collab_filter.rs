//! Collaborative filtering demo: recover a low-rank ratings matrix from
//! sparse observations with distributed alternating least squares.
//!
//! A planted rank-r factorization generates ratings; we observe a few
//! entries per user, then run ALS (batched CG, one FusedMM per
//! iteration) on a simulated 16-rank machine and watch the loss drop.
//!
//! ```text
//! cargo run --release --example als_collab_filter
//! ```

use std::sync::Arc;

use distributed_sparse_kernels::apps::{run_als, AlsConfig, AppEngine};
use distributed_sparse_kernels::comm::{AggregateStats, MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::session::Session;
use distributed_sparse_kernels::core::{AlgorithmFamily, Elision, GlobalProblem, StagedProblem};
use distributed_sparse_kernels::dense::ops::row_dot;
use distributed_sparse_kernels::dense::Mat;
use distributed_sparse_kernels::sparse::gen;

fn main() {
    // Plant a rank-8 "taste" model: 2048 users × 2048 items.
    let (users, items, rank) = (2048usize, 2048usize, 8usize);
    let a_true = Mat::random(users, rank, 1);
    let b_true = Mat::random(items, rank, 2);
    // Observe 12 ratings per user.
    let mut s = gen::erdos_renyi(users, items, 12, 3);
    let ratings: Vec<f64> = s
        .iter()
        .map(|(i, j, _)| row_dot(&a_true, i, &b_true, j))
        .collect();
    s.vals = ratings;
    // Fresh random factors to optimize.
    let prob = Arc::new(GlobalProblem::new(
        s,
        Mat::random(users, rank, 4),
        Mat::random(items, rank, 5),
    ));
    println!(
        "observations: {} ratings of {}×{} (density {:.2}%)",
        prob.nnz(),
        users,
        items,
        100.0 * prob.nnz() as f64 / (users * items) as f64
    );

    for (family, elision, c) in [
        (AlgorithmFamily::DenseShift15, Elision::LocalKernelFusion, 4),
        (AlgorithmFamily::SparseShift15, Elision::ReplicationReuse, 4),
    ] {
        let staged = Arc::new(StagedProblem::new(Arc::clone(&prob)));
        let world = SimWorld::new(16, MachineModel::cori_knl());
        let outcomes = world.run(move |comm| {
            let mut engine = AppEngine::new(
                Session::builder_staged(Arc::clone(&staged))
                    .family(family)
                    .replication(c)
                    .elision(elision)
                    .build(comm),
            );
            run_als(
                &mut engine,
                &AlsConfig {
                    lambda: 0.02,
                    cg_iters: 10,
                    sweeps: 2,
                    track_loss: true,
                },
            )
        });
        let report = &outcomes[0].value;
        let stats: Vec<_> = outcomes.iter().map(|o| o.stats.clone()).collect();
        let agg = AggregateStats::from_ranks(&stats);
        println!("\n== {family:?} / {elision:?} (c = {c}) ==");
        println!(
            "  squared loss: {:.4e} → {:.4e}  ({:.0}× reduction)",
            report.initial_loss.unwrap(),
            report.final_loss.unwrap(),
            report.initial_loss.unwrap() / report.final_loss.unwrap().max(1e-30)
        );
        println!(
            "  CG residuals per phase: {:?}",
            report
                .phase_residuals
                .iter()
                .map(|r| format!("{r:.2e}"))
                .collect::<Vec<_>>()
        );
        println!(
            "  modeled time: kernels (repl {:.3e} + prop {:.3e} + comp {:.3e}) s, \
             outside (comm {:.3e} + comp {:.3e}) s",
            agg.modeled_s(Phase::Replication),
            agg.modeled_s(Phase::Propagation),
            agg.modeled_s(Phase::Computation),
            agg.modeled_s(Phase::OutsideComm),
            agg.modeled_s(Phase::OutsideCompute),
        );
    }
    println!("\nals_collab_filter OK");
}
