//! Communication-cost explorer: evaluate the paper's Table III/IV
//! theory for a problem you describe, without running anything.
//!
//! ```text
//! cargo run --release --example comm_cost_explorer -- [p] [n] [r] [nnz_per_row]
//! ```
//!
//! Prints the planner's whole scoreboard — every FusedMM candidate
//! (dense-shift *and* pattern-routed variants) with its modeled
//! words/messages per processor, optimal replication factor, and
//! predicted time — exactly as `KernelBuilder::plan` ranks them
//! (index 0 is what `.auto()` would build), then a dense-vs-routed
//! comparison per algorithm showing what sparse-aware routing saves at
//! this shape. Uses the planning-only `KernelBuilder::for_shape`, so
//! paper-scale shapes (n = 2²² and beyond) score instantly with
//! nothing materialized.

use distributed_sparse_kernels::comm::MachineModel;
use distributed_sparse_kernels::core::kernel::KernelBuilder;
use distributed_sparse_kernels::core::theory;
use distributed_sparse_kernels::core::{ProblemDims, Routing};

fn arg(idx: usize, default: usize) -> usize {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let p = arg(1, 256);
    let n = arg(2, 1 << 22);
    let r = arg(3, 256);
    let nnz_per_row = arg(4, 32);
    let dims = ProblemDims::new(n, n, r);
    let nnz = n * nnz_per_row;
    let phi = dims.phi(nnz);
    let model = MachineModel::cori_knl();

    println!("p = {p}, n = {n}, r = {r}, nnz/row = {nnz_per_row}  →  φ = {phi:.4}\n");
    println!(
        "| {:<4} | {:<42} | {:<8} | {:>6} | {:>14} | {:>9} | {:>12} | {:<11} |",
        "rank",
        "algorithm",
        "routing",
        "best c",
        "words/proc",
        "msgs/proc",
        "est. time (s)",
        "local"
    );
    println!(
        "|{:-<6}|{:-<44}|{:-<10}|{:-<8}|{:-<16}|{:-<11}|{:-<14}|{:-<13}|",
        "", "", "", "", "", "", "", ""
    );

    // Planning-only shape source: the local column shows the tuner's
    // heuristic (or `DSK_LOCAL_KERNEL` pin) — nothing is materialized,
    // so there is no block to microbenchmark.
    let builder = KernelBuilder::for_shape(dims, nnz).model(model);
    let candidates = builder.plan_candidates(p);
    for (i, cand) in candidates.iter().enumerate() {
        println!(
            "| {:<4} | {:<42} | {:<8} | {:>6} | {:>14.0} | {:>9.0} | {:>12.5} | {:<11} |",
            i + 1,
            cand.algorithm.label(),
            cand.routing.label(),
            cand.c,
            cand.words_per_proc,
            cand.msgs_per_proc,
            cand.predicted_total_s(),
            cand.local_variant.label(),
        );
    }

    // Dense vs pattern-routed, side by side per algorithm: what the
    // sparse-aware shifts save at this shape (at each variant's own
    // optimal c), and the α price of learning the pattern. Routed rows
    // exist only for non-elided algorithms — elision already rewrites
    // the schedule, so the planner never stacks both.
    println!("\n### Dense shifts vs pattern-routed shifts\n");
    println!(
        "| {:<42} | {:>14} | {:>14} | {:>7} | {:>9} | {:>9} |",
        "algorithm", "dense w/proc", "routed w/proc", "saved", "msgs Δ", "time Δ"
    );
    println!(
        "|{:-<44}|{:-<16}|{:-<16}|{:-<9}|{:-<11}|{:-<11}|",
        "", "", "", "", "", ""
    );
    for cand in candidates.iter().filter(|c| c.routing == Routing::Dense) {
        let alg = cand.algorithm;
        if !alg.admits(Routing::Pattern) {
            continue;
        }
        let routed_c = candidates
            .iter()
            .find(|r| r.algorithm == alg && r.routing == Routing::Pattern)
            .map(|r| r.c)
            .unwrap_or(cand.c);
        let Some(rw) = theory::words_for_routing(alg, Routing::Pattern, p, routed_c, dims, nnz)
        else {
            continue;
        };
        let rm = theory::messages_for_routing(alg, Routing::Pattern, p, routed_c).unwrap();
        let dm = theory::messages_for_routing(alg, Routing::Dense, p, cand.c).unwrap();
        let rt =
            theory::predicted_comm_time_for(&model, alg, Routing::Pattern, p, routed_c, dims, nnz)
                .unwrap();
        let dt = theory::predicted_comm_time_for(&model, alg, Routing::Dense, p, cand.c, dims, nnz)
            .unwrap();
        println!(
            "| {:<42} | {:>14.0} | {:>14.0} | {:>6.1}% | {:>+9.0} | {:>+8.1}% |",
            alg.label(),
            cand.words_per_proc,
            rw,
            100.0 * (1.0 - rw / cand.words_per_proc),
            rm - dm,
            100.0 * (rt / dt - 1.0),
        );
    }
    println!(
        "\nrouted rows ship only the rows each peer's sparse structure reads \
         (expected union fraction of an Erdős–Rényi block at this φ); the msgs Δ \
         column is the extra latency of the pattern exchange."
    );

    let plan = builder.plan(p);
    println!(
        "\nplanner pick: {} at c = {} (comm {:.5} s)",
        plan.algorithm().unwrap().label(),
        plan.c,
        plan.predicted_comm_s.unwrap()
    );
    println!(
        "rule of thumb from the paper: low φ → shift/replicate the sparse matrix; \
         high φ → shift/replicate a dense matrix. Here φ = {phi:.3}."
    );
}
