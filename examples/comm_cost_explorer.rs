//! Communication-cost explorer: evaluate the paper's Table III/IV
//! theory for a problem you describe, without running anything.
//!
//! ```text
//! cargo run --release --example comm_cost_explorer -- [p] [n] [r] [nnz_per_row]
//! ```
//!
//! Prints the planner's whole scoreboard — every FusedMM candidate with
//! its modeled words/messages per processor, optimal replication
//! factor, and predicted time — exactly as `KernelBuilder::plan` ranks
//! them (index 0 is what `.auto()` would build). Uses the
//! planning-only `KernelBuilder::for_shape`, so paper-scale shapes
//! (n = 2²² and beyond) score instantly with nothing materialized.

use distributed_sparse_kernels::comm::MachineModel;
use distributed_sparse_kernels::core::kernel::KernelBuilder;
use distributed_sparse_kernels::core::ProblemDims;

fn arg(idx: usize, default: usize) -> usize {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let p = arg(1, 256);
    let n = arg(2, 1 << 22);
    let r = arg(3, 256);
    let nnz_per_row = arg(4, 32);
    let dims = ProblemDims::new(n, n, r);
    let nnz = n * nnz_per_row;
    let phi = dims.phi(nnz);
    let model = MachineModel::cori_knl();

    println!("p = {p}, n = {n}, r = {r}, nnz/row = {nnz_per_row}  →  φ = {phi:.4}\n");
    println!(
        "| {:<4} | {:<42} | {:>6} | {:>14} | {:>9} | {:>12} |",
        "rank", "algorithm", "best c", "words/proc", "msgs/proc", "est. time (s)"
    );
    println!(
        "|{:-<6}|{:-<44}|{:-<8}|{:-<16}|{:-<11}|{:-<14}|",
        "", "", "", "", "", ""
    );

    let builder = KernelBuilder::for_shape(dims, nnz).model(model);
    let candidates = builder.plan_candidates(p);
    for (i, cand) in candidates.iter().enumerate() {
        println!(
            "| {:<4} | {:<42} | {:>6} | {:>14.0} | {:>9.0} | {:>12.5} |",
            i + 1,
            cand.algorithm.label(),
            cand.c,
            cand.words_per_proc,
            cand.msgs_per_proc,
            cand.predicted_total_s(),
        );
    }

    let plan = builder.plan(p);
    println!(
        "\nplanner pick: {} at c = {} (comm {:.5} s)",
        plan.algorithm().unwrap().label(),
        plan.c,
        plan.predicted_comm_s.unwrap()
    );
    println!(
        "rule of thumb from the paper: low φ → shift/replicate the sparse matrix; \
         high φ → shift/replicate a dense matrix. Here φ = {phi:.3}."
    );
}
