//! Communication-cost explorer: evaluate the paper's Table III/IV
//! theory for a problem you describe, without running anything.
//!
//! ```text
//! cargo run --release --example comm_cost_explorer -- [p] [n] [r] [nnz_per_row]
//! ```
//!
//! Prints, for each FusedMM algorithm, the modeled words/messages per
//! processor across replication factors, the optimum, and the overall
//! predicted winner — the decision a user would make before a real run.

use distributed_sparse_kernels::comm::MachineModel;
use distributed_sparse_kernels::core::theory::{self, Algorithm};
use distributed_sparse_kernels::core::ProblemDims;

fn arg(idx: usize, default: usize) -> usize {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let p = arg(1, 256);
    let n = arg(2, 1 << 22);
    let r = arg(3, 256);
    let nnz_per_row = arg(4, 32);
    let dims = ProblemDims::new(n, n, r);
    let nnz = n * nnz_per_row;
    let phi = dims.phi(nnz);
    let model = MachineModel::cori_knl();

    println!("p = {p}, n = {n}, r = {r}, nnz/row = {nnz_per_row}  →  φ = {phi:.4}\n");
    println!(
        "| {:<42} | {:>8} | {:>14} | {:>9} | {:>12} |",
        "algorithm", "best c", "words/proc", "msgs/proc", "est. time (s)"
    );
    println!(
        "|{:-<44}|{:-<10}|{:-<16}|{:-<11}|{:-<14}|",
        "", "", "", "", ""
    );

    for alg in Algorithm::all_benchmarked() {
        let Some(c) = theory::optimal_c_search(alg, p, dims, nnz, 16) else {
            continue;
        };
        let words = theory::words_per_processor(alg, p, c, dims, nnz);
        let msgs = theory::messages_per_processor(alg, p, c);
        let t = theory::predicted_comm_time(&model, alg, p, c, dims, nnz)
            + theory::predicted_comp_time(&model, p, dims, nnz);
        println!(
            "| {:<42} | {:>8} | {:>14.0} | {:>9.0} | {:>12.5} |",
            alg.label(),
            c,
            words,
            msgs,
            t
        );
    }

    let best = theory::predict_best(&model, &Algorithm::all_benchmarked(), p, dims, nnz, 16);
    println!(
        "\npredicted winner: {} at c = {} (comm {:.5} s)",
        best.algorithm.label(),
        best.c,
        best.time_s
    );
    println!(
        "rule of thumb from the paper: low φ → shift/replicate the sparse matrix; \
         high φ → shift/replicate a dense matrix. Here φ = {phi:.3}."
    );
}
