//! Elastic fleet demo: an ALS-style factorization sweep that **grows**
//! from 4 to 6 active ranks mid-run, **loses a rank** to a simulated
//! node failure, and **finishes on the 5 survivors** — with a loss
//! trajectory that is bit-reproducible modulo the documented resize
//! points (a resize regroups the loss reduction, so boundaries agree to
//! 1e-9 relative, not bitwise).
//!
//! ```text
//! cargo run --release --example elastic_fleet
//! DSK_COMM_BACKEND=socket cargo run --release --example elastic_fleet
//! DSK_TRACE=fleet.json DSK_COMM_BACKEND=socket cargo run --release --example elastic_fleet
//! ```
//!
//! With `DSK_TRACE=<path>` set, every epoch's per-rank span timeline is
//! gathered at the outcome broadcast and written as a Chrome trace-event
//! file — load it in Perfetto to see one track per rank with the
//! rendezvous, shift post/wait (and stall attribution), the mid-epoch
//! rank death, and the survivor resize laid out on a common clock.
//!
//! Under the socket backend every rank is a real OS process and the
//! victim genuinely dies (`process::exit`): the epoch aborts with a
//! typed [`EpochError`], the process pool survives, and the next epoch
//! rendezvouses the 5 survivors into a fresh world. Under the in-memory
//! backends the victim panics and the same abort/restore story plays
//! out across threads.

use std::sync::Arc;

use distributed_sparse_kernels::comm::launch::is_worker_process;
use distributed_sparse_kernels::comm::{BackendKind, MachineModel, SimWorld};
use distributed_sparse_kernels::core::common::block_range;
use distributed_sparse_kernels::core::session::Session;
use distributed_sparse_kernels::core::GlobalProblem;
use distributed_sparse_kernels::dense::Mat;

const M: usize = 96;
const N: usize = 96;
const R: usize = 6;

/// One damped ALS-style sweep (relax both factors toward their
/// right-hand sides) returning the post-sweep loss.
fn sweep(s: &mut Session) -> f64 {
    let rhs = s.rhs_a();
    let a = s.a_iterate();
    let x = Mat::from_fn(a.nrows(), a.ncols(), |i, j| {
        0.8 * a.get(i, j) + 0.05 * rhs.get(i, j)
    });
    s.commit_a(&x);
    let rhs = s.rhs_b();
    let b = s.b_iterate();
    let y = Mat::from_fn(b.nrows(), b.ncols(), |i, j| {
        0.8 * b.get(i, j) + 0.05 * rhs.get(i, j)
    });
    s.commit_b(&y);
    s.worker_mut().sddmm();
    s.stored_loss()
}

/// Reassemble global factors from per-rank outcome tiles (baseline
/// iterate layout: contiguous row blocks in rank order).
fn assemble(tiles: Vec<(Vec<f64>, usize)>, cols: usize) -> Mat {
    let blocks: Vec<Mat> = tiles
        .into_iter()
        .map(|(data, rows)| Mat::from_vec(rows, cols, data))
        .collect();
    Mat::vstack(&blocks)
}

fn main() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(M, N, R, 5, 4242));
    let backend = BackendKind::from_env();
    let model = MachineModel::bandwidth_only();
    let mut trajectory: Vec<(String, f64)> = Vec::new();

    // ---- Epoch 1 (world 6): grow 4 → 6 active ranks mid-run ----------
    let pr = Arc::clone(&prob);
    let world6 = SimWorld::new(6, model);
    let out = world6.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&pr))
            .baseline()
            .active_ranks(4)
            .build(comm);
        if s.is_active() {
            s.worker_mut().sddmm();
        }
        let mut losses = vec![("initial (p=4)".to_string(), s.stored_loss())];
        for k in 0..2 {
            let l = if s.is_active() {
                sweep(&mut s)
            } else {
                // Spares answer the world-collective loss reduction but
                // hold no rows and skip the active-only ALS exchanges.
                s.stored_loss()
            };
            losses.push((format!("sweep {k} (p=4)"), l));
        }
        s.resize(6); // grow: the two spares are drafted in
        losses.push(("after resize 4→6".to_string(), s.stored_loss()));
        for k in 2..4 {
            let l = sweep(&mut s);
            losses.push((format!("sweep {k} (p=6)"), l));
        }
        let a = s.a_iterate();
        let b = s.b_iterate();
        let labels: Vec<String> = losses.iter().map(|(t, _)| t.clone()).collect();
        let values: Vec<f64> = losses.iter().map(|(_, l)| *l).collect();
        (
            (a.into_vec(), b.into_vec()),
            (labels.join("|"), values),
            block_range(M, 6, comm.rank()).len(),
        )
    });
    // The outcome broadcast is the checkpoint transport: every process
    // reassembles the identical global factors.
    let a_ckpt = Arc::new(assemble(
        out.iter()
            .map(|o| (o.value.0 .0.clone(), o.value.2))
            .collect(),
        R,
    ));
    let b_ckpt = Arc::new(assemble(
        out.iter()
            .enumerate()
            .map(|(r, o)| (o.value.0 .1.clone(), block_range(N, 6, r).len()))
            .collect(),
        R,
    ));
    let labels: Vec<String> = out[0].value.1 .0.split('|').map(str::to_string).collect();
    for (t, l) in labels.iter().zip(&out[0].value.1 .1) {
        trajectory.push((t.clone(), *l));
    }
    let loss_ckpt = *out[0].value.1 .1.last().unwrap();

    // ---- Epoch 2 (world 6): rank 2 dies mid-sweep --------------------
    let pr = Arc::clone(&prob);
    let (ac, bc) = (Arc::clone(&a_ckpt), Arc::clone(&b_ckpt));
    // The simulated failure is an expected panic on the in-memory
    // backends; keep the demo's stderr clean.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = world6
        .try_run(move |comm| {
            let mut s = Session::builder_arc(Arc::clone(&pr)).baseline().build(comm);
            s.commit_a(&ac.rows_block(block_range(M, 6, comm.rank())));
            s.commit_b(&bc.rows_block(block_range(N, 6, comm.rank())));
            s.worker_mut().sddmm();
            let _ = sweep(&mut s);
            if comm.rank() == 2 {
                if backend == BackendKind::Socket && is_worker_process() {
                    std::process::exit(3); // a real node failure
                }
                panic!("simulated node failure");
            }
            sweep(&mut s)
        })
        .expect_err("the epoch must abort when a rank dies");
    std::panic::set_hook(default_hook);
    assert_eq!(err.dead, vec![2], "the abort names the dead rank: {err}");
    trajectory.push((format!("[rank 2 died: epoch aborted — {err}]"), f64::NAN));

    // ---- Epoch 3 (world 5): restore the checkpoint, resize onto the
    // survivors, and finish --------------------------------------------
    let pr = Arc::clone(&prob);
    let (ac, bc) = (Arc::clone(&a_ckpt), Arc::clone(&b_ckpt));
    let world5 = SimWorld::new(5, model);
    let out = world5.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&pr))
            .baseline()
            .active_ranks(4)
            .build(comm);
        if s.is_active() {
            s.commit_a(&ac.rows_block(block_range(M, 4, comm.rank())));
            s.commit_b(&bc.rows_block(block_range(N, 4, comm.rank())));
            s.worker_mut().sddmm();
        }
        let restored = s.stored_loss();
        s.resize(5);
        let resized = s.stored_loss();
        let mut finals = Vec::new();
        for k in 4..6 {
            finals.push((format!("sweep {k} (p=5)"), sweep(&mut s)));
        }
        let labels: Vec<String> = finals.iter().map(|(t, _)| t.clone()).collect();
        let values: Vec<f64> = finals.iter().map(|(_, l)| *l).collect();
        (restored, resized, (labels.join("|"), values))
    });
    let (restored, resized, _) = &out[0].value;
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(1.0);
    assert!(
        rel(loss_ckpt, *restored) <= 1e-9,
        "checkpoint restore must preserve the loss: {loss_ckpt} vs {restored}"
    );
    trajectory.push(("restored on survivors (p=4 of 5)".to_string(), *restored));
    trajectory.push(("after resize 4→5".to_string(), *resized));
    let labels: Vec<String> = out[0].value.2 .0.split('|').map(str::to_string).collect();
    for (t, l) in labels.iter().zip(&out[0].value.2 .1) {
        trajectory.push((t.clone(), *l));
    }

    // Workers re-run this whole program; only the launcher narrates.
    if !is_worker_process() {
        println!("elastic fleet on backend {backend:?} — loss trajectory:");
        for (label, loss) in &trajectory {
            if loss.is_nan() {
                println!("  {label}");
            } else {
                println!("  {label:<32} {loss:.6e}");
            }
        }
        println!(
            "resize points (4→6, restore, 4→5) agree to 1e-9 relative; \
             all other points are bit-reproducible across backends"
        );
        if let Some(path) = distributed_sparse_kernels::comm::trace::configured_path() {
            println!("trace written to {} (open in Perfetto)", path.display());
        }
        println!("elastic_fleet OK");
    }
}
