//! Graph-attention-network inference on a power-law graph, distributed
//! over 16 simulated ranks, verified against a serial reference.
//!
//! ```text
//! cargo run --release --example gat_inference
//! ```

use std::sync::Arc;

use distributed_sparse_kernels::apps::{gat::gat_forward_reference, GatConfig, GatEngine, GatHead};
use distributed_sparse_kernels::comm::{AggregateStats, MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::session::Session;
use distributed_sparse_kernels::core::{AlgorithmFamily, GlobalProblem, StagedProblem};
use distributed_sparse_kernels::dense::Mat;
use distributed_sparse_kernels::sparse::gen::{rmat, RmatParams};
use distributed_sparse_kernels::sparse::permute::random_symmetric_permute;

fn main() {
    // A scale-12 R-MAT graph (4096 nodes, power-law degrees), randomly
    // permuted for load balance, with 32-dimensional node embeddings.
    let raw = rmat(RmatParams::graph500(12, 8, 11));
    let (s, _) = random_symmetric_permute(&raw, 12);
    let n = s.nrows;
    let r = 32;
    let h = Mat::random(n, r, 13);
    let prob = Arc::new(GlobalProblem::new(s, h.clone(), h));
    println!(
        "graph: {} nodes, {} edges (max degree heavy-tailed), r = {r}",
        n,
        prob.nnz()
    );

    let cfg = GatConfig {
        heads: 2,
        negative_slope: 0.2,
    };
    let heads: Vec<GatHead> = (0..cfg.heads as u64)
        .map(|i| GatHead::random(r, 500 + i))
        .collect();
    let reference = gat_forward_reference(&prob, &heads, &cfg);
    let ref_sq: f64 = reference.as_slice().iter().map(|v| v * v).sum();

    for (family, c) in [
        (AlgorithmFamily::DenseShift15, 4usize),
        (AlgorithmFamily::SparseRepl25, 4),
    ] {
        let staged = Arc::new(StagedProblem::new(Arc::clone(&prob)));
        let heads = heads.clone();
        let world = SimWorld::new(16, MachineModel::cori_knl());
        let outcomes = world.run(move |comm| {
            let mut engine = GatEngine::new(
                Session::builder_staged(Arc::clone(&staged))
                    .family(family)
                    .replication(c)
                    .build(comm),
            );
            let out = engine.forward(&heads, &cfg);
            let sq: f64 = out.as_slice().iter().map(|v| v * v).sum();
            comm.allreduce_scalar(sq)
        });
        let got_sq = outcomes[0].value;
        let stats: Vec<_> = outcomes.iter().map(|o| o.stats.clone()).collect();
        let agg = AggregateStats::from_ranks(&stats);
        println!("\n== {family:?} (c = {c}) ==");
        println!(
            "  ‖output‖² distributed = {got_sq:.6e}, serial = {ref_sq:.6e} (diff {:.2e})",
            (got_sq - ref_sq).abs()
        );
        println!(
            "  modeled time: attention+convolution kernels \
             (repl {:.3e} + prop {:.3e} + comp {:.3e}) s, \
             softmax/transform outside (comm {:.3e} + comp {:.3e}) s",
            agg.modeled_s(Phase::Replication),
            agg.modeled_s(Phase::Propagation),
            agg.modeled_s(Phase::Computation),
            agg.modeled_s(Phase::OutsideComm),
            agg.modeled_s(Phase::OutsideCompute),
        );
        assert!((got_sq - ref_sq).abs() < 1e-6 * ref_sq.max(1.0));
    }
    println!("\ngat_inference OK");
}
