//! Quickstart: run a distributed FusedMM on a simulated 8-rank machine
//! and verify it against the serial reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use distributed_sparse_kernels::comm::{MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::theory::Algorithm;
use distributed_sparse_kernels::core::worker::DistWorker;
use distributed_sparse_kernels::core::{
    AlgorithmFamily, Elision, GlobalProblem, Sampling, StagedProblem,
};
use distributed_sparse_kernels::dense::ops::max_abs_diff;

fn main() {
    // A small problem: S is 256×256 with 8 nonzeros per row, embeddings
    // are 256×32. φ = nnz/(n·r) = 8/32 = 0.25.
    let prob = Arc::new(GlobalProblem::erdos_renyi(256, 256, 32, 8, 2024));
    println!(
        "problem: {}×{} sparse with {} nonzeros, r = {}, φ = {:.3}\n",
        prob.dims.m,
        prob.dims.n,
        prob.nnz(),
        prob.dims.r,
        prob.phi()
    );
    let reference = prob.reference_fused_b();

    // Try two algorithms: the 1.5D dense-shifting algorithm with local
    // kernel fusion, and the 1.5D sparse-shifting algorithm with
    // replication reuse.
    for (family, elision) in [
        (AlgorithmFamily::DenseShift15, Elision::LocalKernelFusion),
        (AlgorithmFamily::SparseShift15, Elision::ReplicationReuse),
    ] {
        let alg = Algorithm::new(family, elision);
        let staged = Arc::new(StagedProblem::new(Arc::clone(&prob)));
        let reference = reference.clone();

        // 8 ranks, replication factor c = 2, Cori-like cost model.
        let world = SimWorld::new(8, MachineModel::cori_knl());
        let outcomes = world.run(move |comm| {
            let mut worker = DistWorker::from_staged(comm, alg.family, 2, &staged);
            let local = worker.fused_mm_b(alg.elision, Sampling::Values);
            // Layout-independent check: the global Frobenius norm.
            let local_sq: f64 = local.as_slice().iter().map(|v| v * v).sum();
            comm.allreduce_scalar(local_sq)
        });

        let expected_sq: f64 = reference.as_slice().iter().map(|v| v * v).sum();
        let got_sq = outcomes[0].value;
        println!("== {} ==", alg.label());
        println!(
            "  ‖FusedMMB‖² distributed = {got_sq:.6e}, serial = {expected_sq:.6e} (diff {:.2e})",
            (got_sq - expected_sq).abs()
        );
        let repl: f64 = outcomes
            .iter()
            .map(|o| o.stats.phase(Phase::Replication).modeled_s)
            .fold(0.0, f64::max);
        let prop: f64 = outcomes
            .iter()
            .map(|o| o.stats.phase(Phase::Propagation).modeled_s)
            .fold(0.0, f64::max);
        let words: u64 = outcomes.iter().map(|o| o.stats.total().words_sent).sum();
        println!("  modeled comm time: replication {repl:.3e} s + propagation {prop:.3e} s");
        println!("  total words on the wire: {words}\n");
        assert!((got_sq - expected_sq).abs() < 1e-6 * expected_sq);
    }

    // The same check through the gather path, for one algorithm.
    let staged = Arc::new(StagedProblem::new(Arc::clone(&prob)));
    let world = SimWorld::new(8, MachineModel::cori_knl());
    let expected = prob.reference_sddmm().to_coo().to_dense();
    let outcomes = world.run(move |comm| {
        let mut worker = DistWorker::from_staged(comm, AlgorithmFamily::DenseShift15, 2, &staged);
        worker.sddmm();
        worker.gather_r(comm)
    });
    let got = outcomes[0].value.as_ref().unwrap().to_dense();
    let max_diff = got
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("SDDMM gathered vs serial: max |Δ| = {max_diff:.2e}");
    assert!(max_diff < 1e-9);
    let _ = max_abs_diff; // re-exported helper used by the other examples
    println!("\nquickstart OK");
}
