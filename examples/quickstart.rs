//! Quickstart: run a distributed FusedMM on a simulated 8-rank machine
//! and verify it against the serial reference — everything through the
//! [`prelude`](distributed_sparse_kernels::prelude) and the
//! [`KernelBuilder`] planner.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use distributed_sparse_kernels::dense::ops::max_abs_diff;
use distributed_sparse_kernels::prelude::*;

fn main() {
    // A small problem: S is 256×256 with 8 nonzeros per row, embeddings
    // are 256×32. φ = nnz/(n·r) = 8/32 = 0.25.
    let prob = Arc::new(GlobalProblem::erdos_renyi(256, 256, 32, 8, 2024));
    println!(
        "problem: {}×{} sparse with {} nonzeros, r = {}, φ = {:.3}\n",
        prob.dims.m,
        prob.dims.n,
        prob.nnz(),
        prob.dims.r,
        prob.phi()
    );
    let reference = prob.reference_fused_b();

    // First, let the planner decide: KernelBuilder::auto() consults the
    // paper's Table III/IV cost model and picks the predicted-cheapest
    // algorithm, replication factor, and elision for this shape.
    let auto_plan = KernelBuilder::from_arc(Arc::clone(&prob)).plan(8);
    println!(
        "planner: at p = 8 the predicted-cheapest algorithm is {} at c = {} \
         (modeled comm {:.3e} s per FusedMM)\n",
        auto_plan.algorithm().expect("planned a family").label(),
        auto_plan.c,
        auto_plan.predicted_comm_s.unwrap()
    );

    // Then run three configurations — the auto plan plus two pinned
    // algorithms — and verify each against the serial reference.
    let configs: [(&str, KernelBuilder<'static>); 3] = [
        ("auto", KernelBuilder::from_arc(Arc::clone(&prob))),
        (
            "1.5D dense shift + LKF",
            KernelBuilder::from_arc(Arc::clone(&prob))
                .family(AlgorithmFamily::DenseShift15)
                .elision(Elision::LocalKernelFusion)
                .replication(2),
        ),
        (
            "1.5D sparse shift + reuse",
            KernelBuilder::from_arc(Arc::clone(&prob))
                .family(AlgorithmFamily::SparseShift15)
                .elision(Elision::ReplicationReuse)
                .replication(2),
        ),
    ];

    for (name, builder) in configs {
        let reference = reference.clone();
        let plan = builder.plan(8);

        // 8 ranks, Cori-like cost model.
        let world = SimWorld::new(8, MachineModel::cori_knl());
        let outcomes = world.run(move |comm| {
            let mut worker = builder.build(comm);
            let local = worker.fused_mm_b(None, plan.elision, Sampling::Values);
            // Layout-independent check: the global Frobenius norm.
            let local_sq: f64 = local.as_slice().iter().map(|v| v * v).sum();
            comm.allreduce_scalar(local_sq)
        });

        let expected_sq: f64 = reference.as_slice().iter().map(|v| v * v).sum();
        let got_sq = outcomes[0].value;
        println!("== {name}: {} (c = {}) ==", plan.id.label(), plan.c);
        println!(
            "  ‖FusedMMB‖² distributed = {got_sq:.6e}, serial = {expected_sq:.6e} (diff {:.2e})",
            (got_sq - expected_sq).abs()
        );
        let repl: f64 = outcomes
            .iter()
            .map(|o| o.stats.phase(Phase::Replication).modeled_s)
            .fold(0.0, f64::max);
        let prop: f64 = outcomes
            .iter()
            .map(|o| o.stats.phase(Phase::Propagation).modeled_s)
            .fold(0.0, f64::max);
        let words: u64 = outcomes.iter().map(|o| o.stats.total().words_sent).sum();
        println!("  modeled comm time: replication {repl:.3e} s + propagation {prop:.3e} s");
        println!("  total words on the wire: {words}\n");
        assert!((got_sq - expected_sq).abs() < 1e-6 * expected_sq);
    }

    // The same check through the gather path, for one algorithm.
    let expected = prob.reference_sddmm().to_coo().to_dense();
    let builder = KernelBuilder::from_arc(Arc::clone(&prob))
        .family(AlgorithmFamily::DenseShift15)
        .replication(2);
    let world = SimWorld::new(8, MachineModel::cori_knl());
    let outcomes = world.run(move |comm| {
        let mut worker = builder.build(comm);
        worker.sddmm();
        worker.gather_r(comm)
    });
    let got = outcomes[0].value.as_ref().unwrap().to_dense();
    let max_diff = got
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("SDDMM gathered vs serial: max |Δ| = {max_diff:.2e}");
    assert!(max_diff < 1e-9);
    let _ = max_abs_diff; // re-exported helper used by the other examples
    println!("\nquickstart OK");
}
