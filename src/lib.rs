//! # distributed-sparse-kernels
//!
//! A Rust reproduction of *Distributed-Memory Sparse Kernels for Machine
//! Learning* (Bharadwaj, Buluç, Demmel — IPDPS 2022): communication-
//! avoiding 1.5D and 2.5D distributed-memory algorithms for SDDMM, SpMM,
//! and the fused SDDMM→SpMM sequence (FusedMM), together with the two
//! communication-eliding strategies the paper introduces (replication
//! reuse and local kernel fusion).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`comm`] — simulated distributed-memory runtime (ranks as threads,
//!   counted messages, α-β-γ machine model, process grids).
//! * [`sparse`] — COO/CSR/CSC matrices, generators (Erdős–Rényi, R-MAT),
//!   Matrix Market I/O, block partitioning.
//! * [`dense`] — row-major dense matrices and the small set of BLAS-like
//!   operations the kernels need.
//! * [`kernels`] — shared-memory SpMM / SDDMM / fused local kernels.
//! * [`core`] — the paper's contribution: distributed SDDMM / SpMM /
//!   FusedMM algorithms, data distributions, communication theory, and
//!   the PETSc-like 1D baseline.
//! * [`apps`] — alternating-least-squares collaborative filtering and
//!   graph-attention-network inference built on the distributed kernels.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use dsk_apps as apps;
pub use dsk_comm as comm;
pub use dsk_core as core;
pub use dsk_dense as dense;
pub use dsk_kernels as kernels;
pub use dsk_sparse as sparse;
