//! # distributed-sparse-kernels
//!
//! A Rust reproduction of *Distributed-Memory Sparse Kernels for Machine
//! Learning* (Bharadwaj, Buluç, Demmel — IPDPS 2022): communication-
//! avoiding 1.5D and 2.5D distributed-memory algorithms for SDDMM, SpMM,
//! and the fused SDDMM→SpMM sequence (FusedMM), together with the two
//! communication-eliding strategies the paper introduces (replication
//! reuse and local kernel fusion).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`comm`] — simulated distributed-memory runtime (ranks as threads,
//!   counted messages, α-β-γ machine model, process grids).
//! * [`sparse`] — COO/CSR/CSC matrices, generators (Erdős–Rényi, R-MAT),
//!   Matrix Market I/O, block partitioning.
//! * [`dense`] — row-major dense matrices and the small set of BLAS-like
//!   operations the kernels need.
//! * [`kernels`] — shared-memory SpMM / SDDMM / fused local kernels.
//! * [`core`] — the paper's contribution: distributed SDDMM / SpMM /
//!   FusedMM algorithms, data distributions, communication theory, and
//!   the PETSc-like 1D baseline.
//! * [`apps`] — alternating-least-squares collaborative filtering and
//!   graph-attention-network inference built on the distributed kernels.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.
//!
//! Most programs only need the [`prelude`]: the [`prelude::DistKernel`]
//! trait, the [`prelude::KernelBuilder`] planner, and the handful of
//! vocabulary types they speak.

pub use dsk_apps as apps;
pub use dsk_comm as comm;
pub use dsk_core as core;
pub use dsk_dense as dense;
pub use dsk_kernels as kernels;
pub use dsk_rng as rng;
pub use dsk_sparse as sparse;

/// The one-stop import for driving distributed kernels:
///
/// ```
/// use distributed_sparse_kernels::prelude::*;
///
/// let prob = GlobalProblem::erdos_renyi(64, 64, 8, 4, 7);
/// let world = SimWorld::new(8, MachineModel::cori_knl());
/// let out = world.run(|comm| {
///     let mut worker = KernelBuilder::new(&prob).auto().build(comm);
///     let elision = worker.plan().elision;
///     let local = worker.fused_mm_b(None, elision, Sampling::Values);
///     local.as_slice().iter().map(|v| v * v).sum::<f64>()
/// });
/// assert!(out.iter().map(|o| o.value).sum::<f64>() > 0.0);
/// ```
pub mod prelude {
    pub use dsk_comm::{BackendKind, Comm, MachineModel, Phase, SimWorld};
    pub use dsk_core::common::{
        AlgorithmFamily, Elision, ProblemDims, Routing, Sampling, ShiftMode,
    };
    pub use dsk_core::global::GlobalProblem;
    pub use dsk_core::kernel::{
        CombineSpec, DistKernel, KernelBuilder, KernelId, KernelPlan, PlannedCandidate,
    };
    pub use dsk_core::session::{ReplanEvent, ReplanPolicy, Session, SessionBuilder};
    pub use dsk_core::staged::StagedProblem;
    pub use dsk_core::theory::Algorithm;
    pub use dsk_core::worker::DistWorker;
    pub use dsk_dense::Mat;
}
