//! Integration: the applications produce family-independent results —
//! the same ALS losses and the same GAT outputs no matter which
//! distributed algorithm runs underneath.

use std::sync::Arc;

use distributed_sparse_kernels::apps::{
    gat::gat_forward_reference, run_als, AlsConfig, AppEngine, GatConfig, GatEngine, GatHead,
};
use distributed_sparse_kernels::comm::{MachineModel, SimWorld};
use distributed_sparse_kernels::core::session::Session;
use distributed_sparse_kernels::core::{AlgorithmFamily, Elision, GlobalProblem};
use distributed_sparse_kernels::dense::ops::row_dot;
use distributed_sparse_kernels::dense::Mat;
use distributed_sparse_kernels::sparse::gen;

fn completion_problem(n: usize, r: usize, seed: u64) -> GlobalProblem {
    let a_true = Mat::random(n, r, seed);
    let b_true = Mat::random(n, r, seed + 1);
    let mut s = gen::erdos_renyi(n, n, 5, seed + 2);
    s.vals = s
        .iter()
        .map(|(i, j, _)| row_dot(&a_true, i, &b_true, j))
        .collect();
    GlobalProblem::new(s, Mat::random(n, r, seed + 3), Mat::random(n, r, seed + 4))
}

const CASES: [(AlgorithmFamily, usize, Elision); 5] = [
    (AlgorithmFamily::DenseShift15, 2, Elision::LocalKernelFusion),
    (AlgorithmFamily::DenseShift15, 4, Elision::ReplicationReuse),
    (AlgorithmFamily::SparseShift15, 2, Elision::ReplicationReuse),
    (AlgorithmFamily::DenseRepl25, 2, Elision::ReplicationReuse),
    (AlgorithmFamily::SparseRepl25, 2, Elision::None),
];

#[test]
fn als_final_loss_is_family_independent() {
    let prob = Arc::new(completion_problem(32, 4, 600));
    let mut losses = Vec::new();
    for (family, c, elision) in CASES {
        let pr = Arc::clone(&prob);
        let world = SimWorld::new(8, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut eng = AppEngine::new(
                Session::builder(&pr)
                    .family(family)
                    .replication(c)
                    .elision(elision)
                    .build(comm),
            );
            run_als(
                &mut eng,
                &AlsConfig {
                    lambda: 0.02,
                    cg_iters: 6,
                    sweeps: 1,
                    track_loss: true,
                },
            )
        });
        let rep = &out[0].value;
        assert!(
            rep.final_loss.unwrap() < rep.initial_loss.unwrap(),
            "{family:?} did not reduce loss"
        );
        losses.push(rep.final_loss.unwrap());
    }
    for l in &losses[1..] {
        assert!(
            (l - losses[0]).abs() < 1e-6 * losses[0].max(1e-9),
            "family losses diverge: {losses:?}"
        );
    }
}

#[test]
fn gat_norm_is_family_independent_and_matches_reference() {
    let n = 32;
    let r = 6;
    let s = gen::erdos_renyi(n, n, 4, 601);
    let h = Mat::random(n, r, 602);
    let prob = Arc::new(GlobalProblem::new(s, h.clone(), h));
    let cfg = GatConfig {
        heads: 2,
        negative_slope: 0.2,
    };
    let heads: Vec<GatHead> = (0..2).map(|i| GatHead::random(r, 610 + i)).collect();
    let reference = gat_forward_reference(&prob, &heads, &cfg);
    let ref_sq: f64 = reference.as_slice().iter().map(|v| v * v).sum();

    for (family, c, _) in CASES {
        if matches!(family, AlgorithmFamily::DenseShift15) && c == 4 {
            continue; // one config per family is enough here
        }
        let pr = Arc::clone(&prob);
        let hh = heads.clone();
        let world = SimWorld::new(8, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut eng = GatEngine::new(
                Session::builder(&pr)
                    .family(family)
                    .replication(c)
                    .build(comm),
            );
            let local = eng.forward(&hh, &cfg);
            local.as_slice().iter().map(|v| v * v).sum::<f64>()
        });
        let got: f64 = out.iter().map(|o| o.value).sum();
        // sr25 replicates A-panel outputs across fibers? No — panels
        // are disjoint per rank; the sum covers the matrix once.
        assert!(
            (got - ref_sq).abs() < 1e-6 * ref_sq.max(1.0),
            "{family:?}: ‖out‖² {got} vs reference {ref_sq}"
        );
    }
}

#[test]
fn als_improves_monotonically_across_sweeps() {
    let prob = Arc::new(completion_problem(24, 3, 620));
    let mut finals = Vec::new();
    for sweeps in [1usize, 3] {
        let pr = Arc::clone(&prob);
        let world = SimWorld::new(4, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut eng = AppEngine::new(
                Session::builder(&pr)
                    .family(AlgorithmFamily::DenseShift15)
                    .replication(2)
                    .elision(Elision::ReplicationReuse)
                    .build(comm),
            );
            run_als(
                &mut eng,
                &AlsConfig {
                    lambda: 0.02,
                    cg_iters: 5,
                    sweeps,
                    track_loss: true,
                },
            )
        });
        finals.push(out[0].value.final_loss.unwrap());
    }
    assert!(
        finals[1] <= finals[0] * 1.001,
        "more sweeps should not hurt: {finals:?}"
    );
}
