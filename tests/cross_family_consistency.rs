//! Integration: every algorithm family × kernel × elision combination
//! computes the same answer as the serial reference, across grid shapes
//! and awkward (non-divisible) matrix sizes.

use std::sync::Arc;

use distributed_sparse_kernels::comm::{MachineModel, SimWorld};
use distributed_sparse_kernels::core::theory::Algorithm;
use distributed_sparse_kernels::core::worker::DistWorker;
use distributed_sparse_kernels::core::{GlobalProblem, Sampling};

/// Layout-independent fingerprint: the global sum of squares of the
/// local outputs (every layout partitions the result exactly once).
fn fused_b_norm_sq(prob: &Arc<GlobalProblem>, p: usize, alg: Algorithm, c: usize) -> f64 {
    let prob2 = Arc::clone(prob);
    let world = SimWorld::new(p, MachineModel::cori_knl());
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, c, &prob2);
        let local = w.fused_mm_b(None, alg.elision, Sampling::Values);
        local.as_slice().iter().map(|v| v * v).sum::<f64>()
    });
    out.iter().map(|o| o.value).sum()
}

fn fused_a_norm_sq(prob: &Arc<GlobalProblem>, p: usize, alg: Algorithm, c: usize) -> f64 {
    let prob2 = Arc::clone(prob);
    let world = SimWorld::new(p, MachineModel::cori_knl());
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, c, &prob2);
        let local = w.fused_mm_a(None, alg.elision, Sampling::Values);
        local.as_slice().iter().map(|v| v * v).sum::<f64>()
    });
    out.iter().map(|o| o.value).sum()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * b.abs().max(1.0)
}

#[test]
fn all_algorithms_agree_on_fused_b() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(37, 41, 9, 4, 7001));
    let expect: f64 = prob
        .reference_fused_b()
        .as_slice()
        .iter()
        .map(|v| v * v)
        .sum();
    for alg in Algorithm::all_benchmarked() {
        for (p, c) in [(8usize, 2usize), (8, 4)] {
            if !alg.family.valid_c(p, c) {
                continue;
            }
            let got = fused_b_norm_sq(&prob, p, alg, c);
            assert!(
                close(got, expect),
                "{} p={p} c={c}: {got} vs {expect}",
                alg.label()
            );
        }
    }
}

#[test]
fn all_algorithms_agree_on_fused_a() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(43, 33, 11, 3, 7002));
    let expect: f64 = prob
        .reference_fused_a()
        .as_slice()
        .iter()
        .map(|v| v * v)
        .sum();
    for alg in Algorithm::all_benchmarked() {
        let (p, c) = (8usize, 2usize);
        if !alg.family.valid_c(p, c) {
            continue;
        }
        let got = fused_a_norm_sq(&prob, p, alg, c);
        assert!(
            close(got, expect),
            "{} p={p} c={c}: {got} vs {expect}",
            alg.label()
        );
    }
}

#[test]
fn extreme_replication_factors_work() {
    // c = 1 (pure 1D/2D) and c = p (fully replicated fiber).
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 3, 7003));
    let expect: f64 = prob
        .reference_fused_b()
        .as_slice()
        .iter()
        .map(|v| v * v)
        .sum();
    for alg in Algorithm::all_benchmarked() {
        for c in [1usize, 8] {
            if !alg.family.valid_c(8, c) {
                continue;
            }
            let got = fused_b_norm_sq(&prob, 8, alg, c);
            assert!(close(got, expect), "{} c={c}", alg.label());
        }
    }
}

#[test]
fn rectangular_problems_wide_and_tall() {
    // m ≫ n and n ≫ m both work (the kernels never assume square S).
    for (m, n) in [(96usize, 24usize), (24, 96)] {
        let prob = Arc::new(GlobalProblem::erdos_renyi(m, n, 6, 3, 7004));
        let expect: f64 = prob
            .reference_fused_b()
            .as_slice()
            .iter()
            .map(|v| v * v)
            .sum();
        for alg in Algorithm::all_benchmarked() {
            let got = fused_b_norm_sq(&prob, 8, alg, 2);
            assert!(close(got, expect), "{} m={m} n={n}", alg.label());
        }
    }
}

#[test]
fn more_ranks_than_r_columns() {
    // Regression: when p/c exceeds r, the sliced layouts contain empty
    // r-slices; panels must keep their row counts (m × 0 matrices).
    let prob = Arc::new(GlobalProblem::erdos_renyi(64, 64, 4, 3, 7006));
    let expect: f64 = prob
        .reference_fused_b()
        .as_slice()
        .iter()
        .map(|v| v * v)
        .sum();
    for alg in Algorithm::all_benchmarked() {
        for c in [1usize, 2] {
            if !alg.family.valid_c(16, c) {
                continue;
            }
            // p = 16, r = 4: 1.5D sparse shifting at c = 1 has 16 slices
            // of a width-4 dimension — 12 of them empty.
            let got = fused_b_norm_sq(&prob, 16, alg, c);
            assert!(close(got, expect), "{} c={c}", alg.label());
        }
    }
}

#[test]
fn single_rank_degenerates_to_serial() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(20, 20, 5, 3, 7005));
    let expect: f64 = prob
        .reference_fused_b()
        .as_slice()
        .iter()
        .map(|v| v * v)
        .sum();
    for alg in Algorithm::all_benchmarked() {
        if !alg.family.valid_c(1, 1) {
            continue;
        }
        let got = fused_b_norm_sq(&prob, 1, alg, 1);
        assert!(close(got, expect), "{}", alg.label());
    }
}
