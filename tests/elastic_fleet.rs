//! Integration: the elastic fleet end to end. An ALS-style sweep loop
//! loses a rank mid-epoch; the epoch aborts with a typed
//! [`EpochError`] on every survivor, the *pool survives*, and the next
//! epoch rendezvouses a smaller world onto which the session restores
//! its checkpoint and resizes — finishing with a continuous loss
//! trajectory.
//!
//! Under the socket backend (the `DSK_COMM_BACKEND=socket` CI leg) the
//! victim is a real OS process calling `process::exit(3)` mid-epoch:
//! the coordinator detects the death, broadcasts the dead pool id, and
//! the surviving processes carry on. Under the in-memory backends the
//! victim panics; the abort classification must name the same dead
//! rank either way.

use std::sync::Arc;

use distributed_sparse_kernels::comm::launch::is_worker_process;
use distributed_sparse_kernels::comm::{BackendKind, MachineModel, SimWorld};
use distributed_sparse_kernels::core::common::block_range;
use distributed_sparse_kernels::core::session::Session;
use distributed_sparse_kernels::core::GlobalProblem;
use distributed_sparse_kernels::dense::Mat;

const M: usize = 48;
const N: usize = 48;
const R: usize = 6;

fn continuous(before: f64, after: f64) -> bool {
    (before - after).abs() <= 1e-9 * before.abs().max(1.0)
}

/// One damped ALS-style sweep: pull both right-hand sides and relax the
/// iterates toward them. Deterministic and bounded — the point is state
/// evolution through real communication, not convergence.
fn sweep(s: &mut Session) {
    let rhs = s.rhs_a();
    let a = s.a_iterate();
    let x = Mat::from_fn(a.nrows(), a.ncols(), |i, j| {
        0.8 * a.get(i, j) + 0.05 * rhs.get(i, j)
    });
    s.commit_a(&x);
    let rhs = s.rhs_b();
    let b = s.b_iterate();
    let y = Mat::from_fn(b.nrows(), b.ncols(), |i, j| {
        0.8 * b.get(i, j) + 0.05 * rhs.get(i, j)
    });
    s.commit_b(&y);
}

/// Reassemble the global factors from per-rank outcome tiles (baseline
/// iterate layout: contiguous row blocks in rank order).
fn assemble(tiles: &[(Vec<f64>, usize)], cols: usize) -> Mat {
    let blocks: Vec<Mat> = tiles
        .iter()
        .map(|(data, rows)| Mat::from_vec(*rows, cols, data.clone()))
        .collect();
    Mat::vstack(&blocks)
}

/// World 4 checkpoints a swept state; world 4 loses rank 3 mid-sweep
/// (`Err`, `dead == [3]`, pool intact); world 3 restores the checkpoint
/// at 2 active ranks and `Session::resize`s onto all 3 survivors with
/// loss continuity at every boundary.
#[test]
fn rank_death_aborts_the_epoch_and_survivors_resize_with_loss_continuity() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(M, N, R, 4, 7701));
    for backend in BackendKind::conformance_with_env() {
        // --- Epoch A (world 4): sweep and checkpoint -------------------
        let world4 = SimWorld::new(4, MachineModel::bandwidth_only()).backend(backend);
        let pr = Arc::clone(&prob);
        let out = world4.run(move |comm| {
            let mut s = Session::builder_arc(Arc::clone(&pr)).baseline().build(comm);
            s.worker_mut().sddmm();
            for _ in 0..2 {
                sweep(&mut s);
            }
            s.worker_mut().sddmm();
            let a = s.a_iterate();
            let b = s.b_iterate();
            (
                (a.into_vec(), b.into_vec()),
                block_range(M, 4, comm.rank()).len(),
                s.stored_loss(),
            )
        });
        // The outcome broadcast is the checkpoint transport: every
        // process (launcher and workers alike) assembles the identical
        // global factors from the per-rank tiles.
        let a_tiles: Vec<(Vec<f64>, usize)> = out
            .iter()
            .map(|o| (o.value.0 .0.clone(), o.value.1))
            .collect();
        let b_tiles: Vec<(Vec<f64>, usize)> = out
            .iter()
            .enumerate()
            .map(|(r, o)| (o.value.0 .1.clone(), block_range(N, 4, r).len()))
            .collect();
        let a_ckpt = Arc::new(assemble(&a_tiles, R));
        let b_ckpt = Arc::new(assemble(&b_tiles, R));
        let loss_ckpt = out[0].value.2;
        assert!(loss_ckpt > 0.0 && loss_ckpt.is_finite(), "{backend:?}");

        // --- Epoch B (world 4): rank 3 dies mid-sweep ------------------
        let pr = Arc::clone(&prob);
        let err = world4
            .try_run(move |comm| {
                let mut s = Session::builder_arc(Arc::clone(&pr)).baseline().build(comm);
                s.worker_mut().sddmm();
                sweep(&mut s);
                if comm.rank() == 3 {
                    if backend == BackendKind::Socket && is_worker_process() {
                        // A real node failure: the worker process dies
                        // without a word.
                        std::process::exit(3);
                    }
                    panic!("simulated node failure");
                }
                // Survivors head into another sweep and block on data
                // the dead rank will never send.
                sweep(&mut s);
                s.stored_loss()
            })
            .expect_err("the epoch must abort when a rank dies");
        assert_eq!(
            err.dead,
            vec![3],
            "{backend:?}: the abort must name exactly the dead rank ({err})"
        );

        // --- Epoch C (world 3): restore + resize on the survivors ------
        let pr = Arc::clone(&prob);
        let (ac, bc) = (Arc::clone(&a_ckpt), Arc::clone(&b_ckpt));
        let world3 = SimWorld::new(3, MachineModel::bandwidth_only()).backend(backend);
        let out = world3.run(move |comm| {
            let mut s = Session::builder_arc(Arc::clone(&pr))
                .baseline()
                .active_ranks(2)
                .build(comm);
            if s.is_active() {
                s.commit_a(&ac.rows_block(block_range(M, 2, comm.rank())));
                s.commit_b(&bc.rows_block(block_range(N, 2, comm.rank())));
                s.worker_mut().sddmm();
            }
            let restored = s.stored_loss();
            s.resize(3);
            let resized = s.stored_loss();
            sweep(&mut s);
            s.worker_mut().sddmm();
            (restored, resized, s.stored_loss())
        });
        for o in &out {
            let (restored, resized, after_sweep) = o.value;
            assert!(
                continuous(loss_ckpt, restored),
                "{backend:?} rank {}: checkpoint restore must preserve the loss: \
                 {loss_ckpt} -> {restored}",
                o.rank
            );
            assert!(
                continuous(restored, resized),
                "{backend:?} rank {}: resize boundary: {restored} -> {resized}",
                o.rank
            );
            assert!(after_sweep.is_finite(), "{backend:?} rank {}", o.rank);
        }
        // Cross-backend: the restored trajectory agrees with an
        // uninterrupted in-process reference run of the same program —
        // the "bit-reproducible modulo documented resize points"
        // contract (the resize/restore reductions regroup, hence the
        // relative tolerance rather than bit equality).
        let pr = Arc::clone(&prob);
        let reference = SimWorld::new(4, MachineModel::bandwidth_only())
            .backend(BackendKind::InProc)
            .run(move |comm| {
                let mut s = Session::builder_arc(Arc::clone(&pr)).baseline().build(comm);
                s.worker_mut().sddmm();
                for _ in 0..2 {
                    sweep(&mut s);
                }
                s.worker_mut().sddmm();
                s.stored_loss()
            });
        assert!(
            continuous(reference[0].value, out[0].value.0),
            "{backend:?}: recovered loss diverged from the uninterrupted reference: \
             {} vs {}",
            reference[0].value,
            out[0].value.0
        );
    }
}

/// The same death under `run` (non-elastic) would kill the pool; under
/// `try_run` the pool must survive and serve further epochs — including
/// one that *grows* back is forbidden after a death and panics with an
/// actionable message (socket backend only; in-memory worlds have no
/// pool to constrain).
#[test]
fn growth_after_a_death_is_rejected_actionably() {
    if BackendKind::from_env() != BackendKind::Socket {
        // The constraint is a property of the process pool; in-memory
        // backends rebuild worlds freely.
        return;
    }
    let err = SimWorld::new(2, MachineModel::bandwidth_only())
        .backend(BackendKind::Socket)
        .try_run(|comm| {
            if comm.rank() == 1 {
                if is_worker_process() {
                    std::process::exit(3);
                }
                panic!("simulated node failure");
            }
            let v: Vec<f64> = comm.recv(1, 7);
            v.len()
        })
        .expect_err("rank 1 died");
    assert_eq!(err.dead, vec![1]);
    // Growing past the survivors must panic with the documented
    // message, not hang or half-spawn.
    let grown = std::panic::catch_unwind(|| {
        SimWorld::new(2, MachineModel::bandwidth_only())
            .backend(BackendKind::Socket)
            .run(|comm| comm.rank())
    });
    let msg = match grown {
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic>".to_string()),
        Ok(_) => panic!("a 2-rank world cannot be served by 1 survivor"),
    };
    assert!(
        msg.contains("cannot fill") || msg.contains("cannot grow"),
        "the rejection must be actionable: {msg}"
    );
}
