//! `KernelBuilder::auto()` must reproduce the paper's Figure 6 phase
//! diagram: the planned algorithm equals `theory::predict_best`'s
//! winner on a handful of (m, n, nnz, p) points spanning four distinct
//! regimes — one per algorithm family — and the planned configuration
//! actually computes the right answer end-to-end.

use distributed_sparse_kernels::core::theory::{self, Algorithm};
use distributed_sparse_kernels::prelude::*;

/// Paper-scale shape statistics where each family wins (verified
/// against the Table III cost model; see §VI-C/§VI-D for the
/// qualitative picture: sparse-shifting at low φ, dense-shifting at
/// high φ, 2.5D replication when fibers are cheap relative to rings).
#[test]
fn theory_phase_diagram_covers_all_families_at_paper_scale() {
    let model = MachineModel::cori_knl();
    let cases = [
        // (name, n, r, nnz/row, p, winning family)
        (
            "low-phi 1.5D sparse shift",
            1usize << 18,
            256usize,
            4usize,
            32usize,
            AlgorithmFamily::SparseShift15,
        ),
        (
            "high-phi 1.5D dense shift",
            1 << 18,
            64,
            256,
            32,
            AlgorithmFamily::DenseShift15,
        ),
        (
            "phi=1/2 2.5D sparse repl",
            1 << 14,
            16,
            8,
            64,
            AlgorithmFamily::SparseRepl25,
        ),
        (
            "wide-r 2.5D dense repl",
            1 << 14,
            512,
            128,
            64,
            AlgorithmFamily::DenseRepl25,
        ),
    ];
    for (name, n, r, nnz_per_row, p, family) in cases {
        let dims = ProblemDims::new(n, n, r);
        let nnz = n * nnz_per_row;
        // The paper's Figure 6 is a dense-shift diagram: score every
        // candidate under Routing::Dense only.
        let (dense_best, dense_time) = Algorithm::all_benchmarked()
            .into_iter()
            .filter_map(|alg| {
                let c = theory::optimal_c_search(alg, p, dims, nnz, 16)?;
                Some((
                    alg,
                    theory::predicted_comm_time(&model, alg, p, c, dims, nnz),
                ))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(
            dense_best.family, family,
            "phase-diagram regime '{name}' picked {dense_best:?}"
        );
        // The routing-aware planner may swap in a pattern-routed
        // variant, but only ever to go *faster* than the paper's pick.
        let best = theory::predict_best(&model, &Algorithm::all_benchmarked(), p, dims, nnz, 16);
        assert!(
            best.time_s <= dense_time * (1.0 + 1e-12),
            "regime '{name}': routing-aware pick {:?} slower than dense diagram",
            best.algorithm
        );
        if best.algorithm.family != family {
            assert_eq!(
                best.routing,
                Routing::Pattern,
                "regime '{name}': family changed without pattern routing"
            );
        }
    }
}

/// `plan_candidates()` is the planner's whole scoreboard: across a
/// seeded grid of shapes it must contain exactly the admissible
/// Table III candidates, each scored and ordered as `theory::` scores
/// them — so harnesses interrogating the planner and tests re-deriving
/// the theory can never drift apart.
#[test]
fn plan_candidates_ordering_agrees_with_theory_across_seeded_grid() {
    let model = MachineModel::cori_knl();
    let c_max = 16usize;
    let mut shapes = 0usize;
    for (si, &n) in [256usize, 1024, 4096].iter().enumerate() {
        for (ri, &r) in [8usize, 32, 128].iter().enumerate() {
            for &nnz_row in &[2usize, 8, 32] {
                let seed = 9000 + (si * 16 + ri) as u64;
                let prob = GlobalProblem::erdos_renyi(n, n, r, nnz_row, seed);
                let builder = KernelBuilder::new(&prob).max_replication(c_max);
                for p in [8usize, 16, 64] {
                    let cands = builder.plan_candidates(p);
                    // Exactly the admissible (algorithm, routing) rows:
                    // every benchmarked algorithm with a valid c, scored
                    // under each routing it admits.
                    let admissible: Vec<_> = Algorithm::all_benchmarked()
                        .into_iter()
                        .filter(|alg| {
                            theory::optimal_c_search(*alg, p, prob.dims, prob.nnz(), c_max)
                                .is_some()
                        })
                        .collect();
                    let rows: usize = admissible
                        .iter()
                        .map(|alg| Routing::ALL.iter().filter(|&&rt| alg.admits(rt)).count())
                        .sum();
                    assert_eq!(cands.len(), rows, "n={n} r={r} p={p}");
                    for cand in &cands {
                        let c = theory::optimal_c_search(
                            cand.algorithm,
                            p,
                            prob.dims,
                            prob.nnz(),
                            c_max,
                        )
                        .unwrap();
                        assert_eq!(cand.c, c, "{:?} n={n} r={r} p={p}", cand.algorithm);
                        let t = theory::predicted_comm_time_for(
                            &model,
                            cand.algorithm,
                            cand.routing,
                            p,
                            c,
                            prob.dims,
                            prob.nnz(),
                        )
                        .unwrap();
                        assert!(
                            (cand.predicted_comm_s - t).abs() <= 1e-15 * t.max(1e-30),
                            "{:?}/{:?} n={n} r={r} p={p}: score drifted from theory",
                            cand.algorithm,
                            cand.routing
                        );
                        let w = theory::words_for_routing(
                            cand.algorithm,
                            cand.routing,
                            p,
                            c,
                            prob.dims,
                            prob.nnz(),
                        )
                        .unwrap();
                        assert_eq!(cand.words_per_proc, w);
                    }
                    // Sorted ascending, head == plan == predict_best.
                    assert!(cands
                        .windows(2)
                        .all(|w| w[0].predicted_comm_s <= w[1].predicted_comm_s));
                    let best =
                        theory::predict_best(&model, &admissible, p, prob.dims, prob.nnz(), c_max);
                    assert_eq!(cands[0].algorithm, best.algorithm, "n={n} r={r} p={p}");
                    assert_eq!(cands[0].c, best.c);
                    assert_eq!(cands[0].routing, best.routing, "n={n} r={r} p={p}");
                    let plan = builder.plan(p);
                    assert_eq!(plan.algorithm().unwrap(), cands[0].algorithm);
                    shapes += 1;
                }
            }
        }
    }
    assert_eq!(shapes, 81, "the grid must actually be swept");
}

/// The planner must agree with `theory::predict_best` exactly —
/// algorithm, elision, replication factor, and predicted time — on
/// materializable problems spanning all four families, and the planned
/// worker must produce the correct FusedMM.
#[test]
fn auto_matches_theory_and_runs_on_four_regimes() {
    // Shape points confirmed to make each family the Table III winner
    // (same φ corners as the paper-scale cases above, scaled down so
    // the problems materialize and the worlds run).
    let cases = [
        // (name, n, r, nnz/row, p, family)
        (
            "1.5D dense shift",
            1usize << 10,
            8usize,
            8usize,
            16usize,
            AlgorithmFamily::DenseShift15,
        ),
        (
            "1.5D sparse shift",
            1 << 10,
            16,
            2,
            16,
            AlgorithmFamily::SparseShift15,
        ),
        (
            "2.5D dense repl",
            1 << 10,
            32,
            2,
            16,
            AlgorithmFamily::DenseRepl25,
        ),
        (
            "2.5D sparse repl",
            1 << 10,
            256,
            128,
            64,
            AlgorithmFamily::SparseRepl25,
        ),
    ];
    for (name, n, r, nnz_per_row, p, family) in cases {
        let prob = GlobalProblem::erdos_renyi(n, n, r, nnz_per_row, 7);
        let builder = KernelBuilder::new(&prob);
        let plan = builder.plan(p);
        let expect = theory::predict_best(
            &MachineModel::cori_knl(),
            &Algorithm::all_benchmarked(),
            p,
            prob.dims,
            prob.nnz(),
            16,
        );
        assert_eq!(
            plan.algorithm().unwrap(),
            expect.algorithm,
            "planner/theory algorithm mismatch for regime '{name}'"
        );
        assert_eq!(plan.c, expect.c, "regime '{name}'");
        assert!(
            (plan.predicted_comm_s.unwrap() - expect.time_s).abs() <= 1e-12 * expect.time_s,
            "regime '{name}': predicted time drifted from theory"
        );
        assert_eq!(
            plan.id,
            KernelId::Family(family),
            "regime '{name}': planned {:?}, expected family {family:?}",
            plan.id
        );

        // The planned configuration must actually compute FusedMMB.
        let expect_sq: f64 = prob
            .reference_fused_b()
            .as_slice()
            .iter()
            .map(|v| v * v)
            .sum();
        let world = SimWorld::new(p, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut worker = builder.build(comm);
            let elision = worker.plan().elision;
            let local = worker.fused_mm_b(None, elision, Sampling::Values);
            local.as_slice().iter().map(|v| v * v).sum::<f64>()
        });
        let got: f64 = out.iter().map(|o| o.value).sum();
        assert!(
            (got - expect_sq).abs() <= 1e-6 * expect_sq.max(1.0),
            "regime '{name}': planned algorithm produced a wrong FusedMM"
        );
    }
}
