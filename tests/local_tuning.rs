//! Integration: the two-level tuning wiring. The local-kernel variant
//! choice is a *computation* concern — it must never change what is
//! communicated (words and messages are variant-invariant by
//! construction), the tuning cost must sit in its own phase bucket with
//! zero traffic and zero modeled time, and a pinned variant must flow
//! through the planner's scoreboard and the built worker untouched.
//! CI runs this file under every `DSK_COMM_BACKEND` leg.

use std::sync::Arc;

use distributed_sparse_kernels::core::{GlobalProblem, StagedProblem};
use distributed_sparse_kernels::kernels::{LocalKernel, LocalOp, SparseFormat};
use distributed_sparse_kernels::prelude::*;

#[test]
fn tuning_cost_sits_in_its_own_phase_with_zero_traffic() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(256, 256, 16, 4, 7101));
    let staged = Arc::new(StagedProblem::new(Arc::clone(&prob)));
    let builder = KernelBuilder::from_staged(&staged).max_replication(4);
    let world = SimWorld::new(8, MachineModel::cori_knl());
    let out = world.run(move |comm| {
        let mut w = builder.build(comm);
        let elision = w.plan().elision;
        let local = w.fused_mm_b(None, elision, Sampling::Values);
        local.as_slice().iter().map(|v| v * v).sum::<f64>()
    });
    for o in &out {
        let t = o.stats.phase(Phase::LocalTuning);
        assert_eq!(t.words_sent, 0, "tuning must not communicate");
        assert_eq!(t.words_recv, 0);
        assert_eq!(t.msgs_sent, 0);
        assert_eq!(t.msgs_recv, 0);
        assert_eq!(t.flops, 0, "tuning reps are not modeled computation");
        assert_eq!(t.modeled_s, 0.0, "tuning never carries modeled cost");
    }
    // The microbenchmarks really ran somewhere: at least one rank spent
    // wall time in the bucket (the cache serializes the rest away).
    assert!(
        out.iter()
            .any(|o| o.stats.phase(Phase::LocalTuning).wall_s > 0.0),
        "no rank recorded local-tuning wall time"
    );
}

/// Pinning different variants (the planner obeys programmatic pins and
/// `DSK_LOCAL_KERNEL` identically) must leave the answer and the entire
/// communication profile untouched — only local wall time may move.
#[test]
fn pinned_variants_change_nothing_but_the_local_kernel() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(192, 192, 8, 6, 7102));
    let mut sums: Vec<f64> = Vec::new();
    let mut traffic: Vec<(u64, u64)> = Vec::new();
    for pin in [LocalKernel::Naive, LocalKernel::ParBlocked] {
        let staged = Arc::new(StagedProblem::new(Arc::clone(&prob)));
        staged.local_tuning().set_pin(Some(pin));
        let builder = KernelBuilder::from_staged(&staged).max_replication(4);
        // The scoreboard reports the pin on every row, modulo the
        // deterministic per-format clamp (COO families degrade a
        // parallel pin to its serial counterpart).
        let cands = builder.plan_candidates(8);
        assert!(!cands.is_empty());
        let admissible = [
            pin.clamp(LocalOp::Spmm, SparseFormat::Csr),
            pin.clamp(LocalOp::Spmm, SparseFormat::Coo),
        ];
        for cand in &cands {
            assert!(
                admissible.contains(&cand.local_variant),
                "{:?}: {:?} not a clamp of the pin {pin:?}",
                cand.algorithm,
                cand.local_variant
            );
        }
        let world = SimWorld::new(8, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut w = builder.build(comm);
            let elision = w.plan().elision;
            let local = w.fused_mm_b(None, elision, Sampling::Values);
            local.as_slice().iter().map(|v| v * v).sum::<f64>()
        });
        sums.push(out.iter().map(|o| o.value).sum::<f64>());
        let t = out.iter().fold((0u64, 0u64), |acc, o| {
            let tot = o.stats.total();
            (acc.0 + tot.words_sent, acc.1 + tot.msgs_sent)
        });
        traffic.push(t);
    }
    let scale = sums[0].abs().max(1.0);
    assert!(
        (sums[0] - sums[1]).abs() <= 1e-9 * scale,
        "pinned variants disagree on the answer: {} vs {}",
        sums[0],
        sums[1]
    );
    assert_eq!(
        traffic[0], traffic[1],
        "variant choice changed the communication profile"
    );
}

/// Re-planning is deterministic: two successive scoreboard queries on
/// the same staged problem resolve identical variants row for row
/// (cache or heuristic — never a fresh measurement at plan time).
#[test]
fn replanning_resolves_identical_variants() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(256, 256, 16, 6, 7103));
    let staged = Arc::new(StagedProblem::new(Arc::clone(&prob)));
    let builder = KernelBuilder::from_staged(&staged).max_replication(4);
    let world = SimWorld::new(4, MachineModel::cori_knl());
    let b2 = KernelBuilder::from_staged(&staged).max_replication(4);
    let _ = world.run(move |comm| {
        let mut w = b2.build(comm);
        let elision = w.plan().elision;
        let _ = w.fused_mm_b(None, elision, Sampling::Values);
    });
    for p in [4usize, 8, 16] {
        let first = builder.plan_candidates(p);
        let second = builder.plan_candidates(p);
        assert_eq!(first.len(), second.len());
        for (x, y) in first.iter().zip(&second) {
            assert_eq!(x.algorithm, y.algorithm);
            assert_eq!(x.local_variant, y.local_variant, "{:?}", x.algorithm);
        }
    }
}
