//! Randomized integration tests: randomized problem shapes, grid
//! configurations, and data must never break the core invariants. Cases
//! are drawn from a seeded PRNG so failures reproduce exactly.

use std::sync::Arc;

use distributed_sparse_kernels::comm::{MachineModel, SimWorld};
use distributed_sparse_kernels::core::kernel::KernelBuilder;
use distributed_sparse_kernels::core::layout::DenseLayout;
use distributed_sparse_kernels::core::theory::{self, Algorithm};
use distributed_sparse_kernels::core::{AlgorithmFamily, Elision, GlobalProblem, Sampling};
use distributed_sparse_kernels::dense::Mat;
use distributed_sparse_kernels::rng::Rng;
use distributed_sparse_kernels::sparse::{gen, CsrMatrix};

const CASES: usize = 16;

/// CSR round-trips preserve the dense view for arbitrary patterns.
#[test]
fn csr_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xF001);
    for _ in 0..CASES {
        let m = 1 + rng.gen_index(39);
        let n = 1 + rng.gen_index(39);
        let seed = rng.next_u64() % 1000;
        let nnz_row = 1 + (seed as usize % 5).min(n - 1);
        let coo = gen::erdos_renyi(m, n, nnz_row, seed);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.to_coo().to_dense(), coo.to_dense());
        assert_eq!(csr.transpose().transpose(), csr);
    }
}

/// The 1.5D dense-shifting FusedMM agrees with the serial reference for
/// random shapes, rank counts, and replication factors — with the
/// worker constructed through the [`KernelBuilder`] planner.
#[test]
fn ds15_fused_random_configs() {
    let mut rng = Rng::seed_from_u64(0xF002);
    for _ in 0..CASES {
        let p = 8usize;
        let c = [1usize, 2, 4][rng.gen_index(3)];
        let m = (8 + rng.gen_index(32)).max(p);
        let n = (8 + rng.gen_index(32)).max(p);
        let r = 1 + rng.gen_index(11);
        let seed = rng.next_u64() % 500;
        let prob = Arc::new(GlobalProblem::erdos_renyi(m, n, r, 3.min(n), seed));
        let expect: f64 = prob
            .reference_fused_b()
            .as_slice()
            .iter()
            .map(|v| v * v)
            .sum();
        let alg = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::ReplicationReuse);
        let prob2 = Arc::clone(&prob);
        let world = SimWorld::new(p, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut w = KernelBuilder::new(&prob2)
                .algorithm(alg)
                .replication(c)
                .build(comm);
            let local = w.fused_mm_b(None, alg.elision, Sampling::Values);
            local.as_slice().iter().map(|v| v * v).sum::<f64>()
        });
        let got: f64 = out.iter().map(|o| o.value).sum();
        assert!(
            (got - expect).abs() <= 1e-6 * expect.max(1.0),
            "m={m} n={n} r={r} c={c} seed={seed}"
        );
    }
}

/// Table III word counts are positive, decrease from None to Reuse, and
/// the searched optimum beats every admissible integer factor.
#[test]
fn theory_formulas_are_sane() {
    let mut rng = Rng::seed_from_u64(0xF003);
    for _ in 0..CASES {
        let p = 1usize << (2 + rng.gen_index(8));
        let r = 16 + rng.gen_index(496);
        let nnz_row = 2 + rng.gen_index(126);
        let n = 1usize << 16;
        let dims = distributed_sparse_kernels::core::ProblemDims::new(n, n, r);
        let nnz = n * nnz_row;
        for alg in Algorithm::all_benchmarked() {
            for c in theory::valid_replication_factors(alg, p, 16) {
                let w = theory::words_per_processor(alg, p, c, dims, nnz);
                assert!(w > 0.0);
                assert!(theory::messages_per_processor(alg, p, c) > 0.0);
            }
            if let Some(c_star) = theory::optimal_c_search(alg, p, dims, nnz, 16) {
                let w_star = theory::words_per_processor(alg, p, c_star, dims, nnz);
                for c in theory::valid_replication_factors(alg, p, 16) {
                    assert!(w_star <= theory::words_per_processor(alg, p, c, dims, nnz) + 1e-9);
                }
            }
        }
        // Reuse never communicates more than no elision at equal c.
        let none = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::None);
        let reuse = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::ReplicationReuse);
        for c in theory::valid_replication_factors(none, p, 16) {
            assert!(
                theory::words_per_processor(reuse, p, c, dims, nnz)
                    <= theory::words_per_processor(none, p, c, dims, nnz)
            );
        }
    }
}

/// Dense layouts extract/gather consistently for random piece
/// structures.
#[test]
fn layout_extract_covers_rows() {
    let mut rng = Rng::seed_from_u64(0xF004);
    for _ in 0..CASES {
        let rows = 1 + rng.gen_index(29);
        let cols = 1 + rng.gen_index(9);
        let split = 1 + rng.gen_index(5);
        let g = Mat::random(rows, cols, 99);
        let mut covered = vec![false; rows];
        let mut total = 0usize;
        for k in 0..split {
            let rr = distributed_sparse_kernels::core::common::block_range(rows, split, k);
            let l = DenseLayout::single(rr.clone(), 0..cols);
            let loc = l.extract(&g);
            assert_eq!(loc.nrows(), rr.len());
            for i in rr {
                assert!(!covered[i]);
                covered[i] = true;
            }
            total += loc.nrows();
        }
        assert_eq!(total, rows);
        assert!(covered.iter().all(|&b| b));
    }
}

/// Collectives compute correct results for random payload sizes and
/// world sizes.
#[test]
fn allreduce_matches_serial_sum() {
    let mut rng = Rng::seed_from_u64(0xF005);
    for _ in 0..CASES {
        let p = 1 + rng.gen_index(8);
        let len = 1 + rng.gen_index(49);
        let seed = rng.next_u64() % 100;
        let world = SimWorld::new(p, MachineModel::bandwidth_only());
        let out = world.run(move |comm| {
            let base = Mat::random(1, len, seed + comm.rank() as u64);
            let mut buf = base.as_slice().to_vec();
            comm.allreduce_sum(&mut buf);
            buf
        });
        let expect: Vec<f64> = (0..len)
            .map(|i| {
                (0..p)
                    .map(|rk| Mat::random(1, len, seed + rk as u64).get(0, i))
                    .sum()
            })
            .collect();
        for o in &out {
            for (g, e) in o.value.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-9);
            }
        }
    }
}
