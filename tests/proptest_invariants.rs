//! Property-based integration tests: randomized problem shapes, grid
//! configurations, and data must never break the core invariants.

use std::sync::Arc;

use proptest::prelude::*;

use distributed_sparse_kernels::comm::{MachineModel, SimWorld};
use distributed_sparse_kernels::core::layout::DenseLayout;
use distributed_sparse_kernels::core::theory::{self, Algorithm};
use distributed_sparse_kernels::core::worker::DistWorker;
use distributed_sparse_kernels::core::{AlgorithmFamily, Elision, GlobalProblem, Sampling};
use distributed_sparse_kernels::dense::Mat;
use distributed_sparse_kernels::sparse::{gen, CsrMatrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CSR round-trips preserve the dense view for arbitrary patterns.
    #[test]
    fn csr_roundtrip(m in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        let nnz_row = 1 + (seed as usize % 5).min(n - 1);
        let coo = gen::erdos_renyi(m, n, nnz_row, seed);
        let csr = CsrMatrix::from_coo(&coo);
        prop_assert_eq!(csr.to_coo().to_dense(), coo.to_dense());
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    /// The 1.5D dense-shifting FusedMM agrees with the serial reference
    /// for random shapes, rank counts, and replication factors.
    #[test]
    fn ds15_fused_random_configs(
        m in 8usize..40,
        n in 8usize..40,
        r in 1usize..12,
        c_pick in 0usize..3,
        seed in 0u64..500,
    ) {
        let p = 8usize;
        let c = [1usize, 2, 4][c_pick];
        let m = m.max(p);
        let n = n.max(p);
        let prob = Arc::new(GlobalProblem::erdos_renyi(m, n, r, 3.min(n), seed));
        let expect: f64 = prob.reference_fused_b().as_slice().iter().map(|v| v * v).sum();
        let alg = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::ReplicationReuse);
        let prob2 = Arc::clone(&prob);
        let world = SimWorld::new(p, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut w = DistWorker::from_global(comm, alg.family, c, &prob2);
            let local = w.fused_mm_b(alg.elision, Sampling::Values);
            local.as_slice().iter().map(|v| v * v).sum::<f64>()
        });
        let got: f64 = out.iter().map(|o| o.value).sum();
        prop_assert!((got - expect).abs() <= 1e-6 * expect.max(1.0));
    }

    /// Table III word counts are positive, decrease from None to Reuse,
    /// and the closed-form optimum beats its neighbors on admissible
    /// integer factors.
    #[test]
    fn theory_formulas_are_sane(
        p_exp in 2u32..10,
        r in 16usize..512,
        nnz_row in 2usize..128,
    ) {
        let p = 1usize << p_exp;
        let n = 1usize << 16;
        let dims = distributed_sparse_kernels::core::ProblemDims::new(n, n, r);
        let nnz = n * nnz_row;
        for alg in Algorithm::all_benchmarked() {
            for c in theory::valid_replication_factors(alg, p, 16) {
                let w = theory::words_per_processor(alg, p, c, dims, nnz);
                prop_assert!(w > 0.0);
                prop_assert!(theory::messages_per_processor(alg, p, c) > 0.0);
            }
            if let Some(c_star) = theory::optimal_c_search(alg, p, dims, nnz, 16) {
                let w_star = theory::words_per_processor(alg, p, c_star, dims, nnz);
                for c in theory::valid_replication_factors(alg, p, 16) {
                    prop_assert!(
                        w_star <= theory::words_per_processor(alg, p, c, dims, nnz) + 1e-9
                    );
                }
            }
        }
        // Reuse never communicates more than no elision at equal c.
        let none = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::None);
        let reuse = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::ReplicationReuse);
        for c in theory::valid_replication_factors(none, p, 16) {
            prop_assert!(
                theory::words_per_processor(reuse, p, c, dims, nnz)
                    <= theory::words_per_processor(none, p, c, dims, nnz)
            );
        }
    }

    /// Dense layouts extract/gather consistently for random piece
    /// structures.
    #[test]
    fn layout_extract_covers_rows(
        rows in 1usize..30,
        cols in 1usize..10,
        split in 1usize..6,
    ) {
        let g = Mat::random(rows, cols, 99);
        let mut covered = vec![false; rows];
        let mut total = 0usize;
        for k in 0..split {
            let rr = distributed_sparse_kernels::core::common::block_range(rows, split, k);
            let l = DenseLayout::single(rr.clone(), 0..cols);
            let loc = l.extract(&g);
            prop_assert_eq!(loc.nrows(), rr.len());
            for i in rr {
                prop_assert!(!covered[i]);
                covered[i] = true;
            }
            total += loc.nrows();
        }
        prop_assert_eq!(total, rows);
        prop_assert!(covered.iter().all(|&b| b));
    }

    /// Collectives compute correct results for random payload sizes and
    /// world sizes.
    #[test]
    fn allreduce_matches_serial_sum(p in 1usize..9, len in 1usize..50, seed in 0u64..100) {
        let world = SimWorld::new(p, MachineModel::bandwidth_only());
        let out = world.run(move |comm| {
            let base = Mat::random(1, len, seed + comm.rank() as u64);
            let mut buf = base.as_slice().to_vec();
            comm.allreduce_sum(&mut buf);
            buf
        });
        let expect: Vec<f64> = (0..len)
            .map(|i| {
                (0..p)
                    .map(|rk| Mat::random(1, len, seed + rk as u64).get(0, i))
                    .sum()
            })
            .collect();
        for o in &out {
            for (g, e) in o.value.iter().zip(&expect) {
                prop_assert!((g - e).abs() < 1e-9);
            }
        }
    }
}
