//! Integration: adaptive sessions re-plan against the *observed*
//! problem and migrate live state across algorithm families mid-run
//! with exact loss continuity — the acceptance contract of the
//! runtime-re-planning API.

use std::sync::Arc;

use distributed_sparse_kernels::apps::{AlsConfig, AlsSolver, AppEngine};
use distributed_sparse_kernels::comm::{MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::session::{ReplanPolicy, Session};
use distributed_sparse_kernels::core::{AlgorithmFamily, Elision, GlobalProblem};
use distributed_sparse_kernels::dense::ops::row_dot;
use distributed_sparse_kernels::dense::Mat;
use distributed_sparse_kernels::sparse::gen;

fn completion_problem(n: usize, r: usize, nnz_per_row: usize, seed: u64) -> GlobalProblem {
    let a_true = Mat::random(n, r, seed);
    let b_true = Mat::random(n, r, seed + 1);
    let mut s = gen::erdos_renyi(n, n, nnz_per_row, seed + 2);
    s.vals = s
        .iter()
        .map(|(i, j, _)| row_dot(&a_true, i, &b_true, j))
        .collect();
    GlobalProblem::new(s, Mat::random(n, r, seed + 3), Mat::random(n, r, seed + 4))
}

/// Aggressive pruning collapses the observed φ across the Figure 6
/// phase boundary: a dense-shifting session must migrate to a sparse
/// family, carrying iterates and R values across with an identical
/// stored loss.
#[test]
fn pruning_triggers_cross_family_migration_with_loss_continuity() {
    // φ = 16/8 = 2.0 — squarely on the dense-shifting side.
    let prob = Arc::new(GlobalProblem::erdos_renyi(64, 64, 8, 16, 8001));
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&prob))
            .family(AlgorithmFamily::DenseShift15)
            .replication(2)
            .build(comm);
        s.worker_mut().sddmm();
        // The application prunes everything below a huge threshold —
        // the observed nonzero count collapses to (near) zero, so the
        // effective φ crosses the Fig. 6 boundary.
        s.map_r(&mut |v| if v.abs() < 1e9 { 0.0 } else { v });
        let loss_before = s.stored_loss();
        let a_before = s.a_iterate();
        let policy = ReplanPolicy {
            hysteresis: 1.05,
            ..ReplanPolicy::default()
        };
        let ev = s.replan(&policy);
        let loss_after = s.stored_loss();
        // The session keeps running on the new family.
        let fused = s.fused_mm_b(None, distributed_sparse_kernels::core::Sampling::Values);
        let finite = fused.as_slice().iter().all(|v| v.is_finite());
        let migration_words = s.stats().phase(Phase::Migration).words_sent;
        (
            ev,
            loss_before,
            loss_after,
            a_before.as_slice().iter().map(|v| v * v).sum::<f64>(),
            s.a_iterate().as_slice().iter().map(|v| v * v).sum::<f64>(),
            finite,
            migration_words,
        )
    });
    for o in &out {
        let (ev, before, after, _, _, finite, _) = &o.value;
        assert!(ev.migrated, "pruning must trigger a migration: {ev:?}");
        assert_ne!(ev.from.id, ev.to.id, "must move to a different family");
        assert_eq!(
            ev.from.id.family(),
            Some(AlgorithmFamily::DenseShift15),
            "source plan"
        );
        assert!(
            matches!(
                ev.to.id.family(),
                Some(AlgorithmFamily::SparseShift15) | Some(AlgorithmFamily::SparseRepl25)
            ),
            "observed φ ≈ 0 must land on a sparse family, got {:?}",
            ev.to.id
        );
        assert!(ev.observed_nnz == 0, "all values pruned");
        assert!(
            (before - after).abs() <= 1e-9 * before.abs().max(1.0),
            "loss discontinuity across migration: {before} vs {after}"
        );
        assert!(finite, "post-migration fused call must run");
    }
    // Iterate content is preserved (sum of squares is layout-invariant
    // across the migration's repartition).
    let before: f64 = out.iter().map(|o| o.value.3).sum();
    let after: f64 = out.iter().map(|o| o.value.4).sum();
    assert!(
        (before - after).abs() <= 1e-9 * before.max(1.0),
        "iterate norm changed across migration: {before} vs {after}"
    );
    // The migration must have moved real words in its own phase.
    let words: u64 = out.iter().map(|o| o.value.6).sum();
    assert!(words > 0, "migration traffic must be charged to its phase");
}

/// Mid-run migration must not perturb the optimization: ALS run
/// entirely on 1.5D dense shifting and ALS that migrates to a sparse
/// family between sweeps converge to the same loss.
#[test]
fn als_with_midrun_migration_matches_static_run() {
    let prob = Arc::new(completion_problem(32, 4, 6, 8002));
    let cfg = AlsConfig {
        lambda: 0.02,
        cg_iters: 5,
        sweeps: 1,
        track_loss: false,
    };

    // Reference: two static sweeps on ds15.
    let pr = Arc::clone(&prob);
    let cfg2 = cfg;
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let reference = world.run(move |comm| {
        let mut eng = AppEngine::new(
            Session::builder_arc(Arc::clone(&pr))
                .family(AlgorithmFamily::DenseShift15)
                .replication(2)
                .elision(Elision::ReplicationReuse)
                .build(comm),
        );
        let solver = AlsSolver::new(cfg2);
        solver.solve(&mut eng);
        solver.solve(&mut eng);
        eng.loss()
    })[0]
        .value;

    // Adaptive: one sweep, aggressive pruning + replan (migrates), one
    // more sweep on the new family.
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut eng = AppEngine::new(
            Session::builder_arc(Arc::clone(&prob))
                .family(AlgorithmFamily::DenseShift15)
                .replication(2)
                .elision(Elision::ReplicationReuse)
                .build(comm),
        );
        let solver = AlsSolver::new(cfg);
        solver.solve(&mut eng);
        // Observe, prune, replan: the observed φ collapse forces a
        // cross-family migration of the live factors.
        eng.session_mut().loss();
        eng.session_mut().map_r(&mut |_| 0.0);
        let ev = eng.replan(&ReplanPolicy {
            hysteresis: 1.0,
            ..ReplanPolicy::default()
        });
        solver.solve(&mut eng);
        (ev.migrated, eng.session().migrations(), eng.loss())
    });
    for o in &out {
        assert!(o.value.0, "replan must migrate after total pruning");
        assert_eq!(o.value.1, 1);
        assert!(
            (o.value.2 - reference).abs() <= 1e-6 * reference.max(1e-9),
            "adaptive ALS diverged from static run: {} vs {reference}",
            o.value.2
        );
    }
}

/// The R redistribution is owner-targeted: each exported triplet
/// travels only to the ranks whose destination pattern bounds contain
/// it, so total `Phase::Migration` traffic stays `O(c·nnz)` — strictly
/// below the `(p-1)·3·nnz` words the old allgather scheme moved for the
/// R values alone (before even counting iterate repartitioning).
#[test]
fn migration_traffic_is_owner_targeted_not_allgather() {
    let p = 8usize;
    // Dense observation pattern so R traffic dominates iterates.
    let prob = Arc::new(GlobalProblem::erdos_renyi(64, 64, 4, 24, 8004));
    let nnz = prob.nnz();
    let world = SimWorld::new(p, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&prob))
            .family(AlgorithmFamily::DenseShift15)
            .replication(2)
            .build(comm);
        s.worker_mut().sddmm();
        let loss_before = s.stored_loss();
        s.migrate(
            distributed_sparse_kernels::core::theory::Algorithm::new(
                AlgorithmFamily::SparseShift15,
                Elision::ReplicationReuse,
            ),
            2,
        );
        (
            s.stats().phase(Phase::Migration).words_sent,
            loss_before,
            s.stored_loss(),
        )
    });
    for o in &out {
        assert!(
            (o.value.1 - o.value.2).abs() <= 1e-9 * o.value.1.abs().max(1.0),
            "loss must survive the targeted redistribution"
        );
    }
    let total: u64 = out.iter().map(|o| o.value.0).sum();
    let old_allgather_floor = ((p - 1) * 3 * nnz) as u64;
    assert!(total > 0, "migration must move words");
    assert!(
        total < old_allgather_floor,
        "owner-targeted migration moved {total} words — not below the \
         {old_allgather_floor}-word floor of the old O(p·nnz) allgather"
    );
    // ss15 partitions R without replication: the R leg is ≈ 3·nnz words,
    // so even with iterate repartitioning and the observation all-reduce
    // the total stays within a small multiple of 3·nnz.
    assert!(
        total < (6 * 3 * nnz) as u64,
        "migration traffic {total} is not O(nnz) (nnz = {nnz})"
    );
}

/// Automatic trigger: with `ReplanPolicy::every_n_calls` installed the
/// session replans itself at the cadence — no `replan` call anywhere —
/// and the drift gate suppresses planner re-runs while the observed
/// problem is unchanged.
#[test]
fn auto_replan_fires_at_cadence_and_respects_drift_gate() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(64, 64, 8, 16, 8005));
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let policy = ReplanPolicy {
            hysteresis: 1.05,
            ..ReplanPolicy::every_n_calls(2).with_drift_ratio(1.5)
        };
        let mut s = Session::builder_arc(Arc::clone(&prob))
            .family(AlgorithmFamily::DenseShift15)
            .replication(2)
            .auto_replan(policy)
            .build(comm);
        use distributed_sparse_kernels::core::Sampling;
        // Calls 1–2: nnz unchanged, so the drift gate must suppress the
        // cadence-point replan (no log entry).
        let _ = s.fused_mm_b(None, Sampling::Values);
        let _ = s.fused_mm_b(None, Sampling::Values);
        let suppressed = s.replan_log().len();
        // Prune everything: observed nnz collapses, drift huge.
        s.worker_mut().sddmm();
        s.map_r(&mut |_| 0.0);
        // Calls 3–4: the call-4 cadence point must auto-replan and
        // migrate across the Fig. 6 boundary.
        let _ = s.fused_mm_b(None, Sampling::Values);
        let _ = s.fused_mm_b(None, Sampling::Values);
        (
            suppressed,
            s.replan_log().len(),
            s.migrations(),
            s.replan_log().first().map(|e| e.at_call),
            s.plan().id.family(),
        )
    });
    for o in &out {
        let (suppressed, logged, migrations, at_call, family) = &o.value;
        assert_eq!(*suppressed, 0, "unchanged nnz must not trigger a replan");
        assert_eq!(*logged, 1, "exactly the call-4 cadence point replans");
        assert_eq!(*migrations, 1, "the collapsed φ must migrate");
        assert_eq!(*at_call, Some(4));
        assert!(
            matches!(
                family,
                Some(AlgorithmFamily::SparseShift15) | Some(AlgorithmFamily::SparseRepl25)
            ),
            "auto-replan must land on a sparse family, got {family:?}"
        );
    }
}

/// The replan log records non-migrating decisions too, and a fresh
/// auto-planned session never migrates away from its own optimum.
#[test]
fn replan_log_records_stay_decisions() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 8003));
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&prob)).build(comm);
        let e1 = s.replan(&ReplanPolicy::default());
        let e2 = s.replan(&ReplanPolicy::default());
        (
            e1.migrated,
            e2.migrated,
            s.replan_log().len(),
            s.migrations(),
        )
    });
    for o in &out {
        assert!(!o.value.0 && !o.value.1);
        assert_eq!(o.value.2, 2, "every decision is logged");
        assert_eq!(o.value.3, 0);
    }
}
