//! Integration: elastic resize. [`Session::resize`] re-plans onto a
//! *different process count* and redistributes live iterates and R
//! values across the two worlds' grids with loss continuity — the
//! acceptance contract of the elastic-fleet subsystem.
//!
//! Loss continuity at a resize boundary is bit-level in the state (the
//! resize moves every stored R value and iterate entry exactly once)
//! but the *reduction* that sums the loss regroups when `p` changes,
//! so the asserted tolerance is the usual 1e-9 relative bound — the
//! "documented resize points" caveat of the bit-reproducible loss
//! trajectory.

use std::sync::Arc;

use distributed_sparse_kernels::comm::{BackendKind, MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::session::Session;
use distributed_sparse_kernels::core::{AlgorithmFamily, GlobalProblem, Sampling};

const WORLD: usize = 6;

/// (family pin, c) pairs valid on the 4-rank starting roster; `None`
/// pins the 1D baseline.
fn starting_plans() -> Vec<(Option<AlgorithmFamily>, usize)> {
    vec![
        (Some(AlgorithmFamily::DenseShift15), 2),
        (Some(AlgorithmFamily::SparseShift15), 2),
        (Some(AlgorithmFamily::DenseRepl25), 1),
        (Some(AlgorithmFamily::SparseRepl25), 1),
        (None, 1),
    ]
}

fn continuous(before: f64, after: f64) -> bool {
    (before - after).abs() <= 1e-9 * before.abs().max(1.0)
}

/// Every family round-trips `p → p+1 → p → p−1` with loss continuity
/// at every boundary and a working fused call at the end, on every
/// backend (the socket leg runs via the `DSK_COMM_BACKEND` CI matrix).
#[test]
fn every_family_resizes_across_p_grids_with_loss_continuity() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(48, 48, 6, 4, 9501));
    for backend in BackendKind::conformance_with_env() {
        for (family, c) in starting_plans() {
            let pr = Arc::clone(&prob);
            let world = SimWorld::new(WORLD, MachineModel::bandwidth_only()).backend(backend);
            let out = world.run(move |comm| {
                let builder = Session::builder_arc(Arc::clone(&pr)).active_ranks(4);
                let builder = match family {
                    Some(f) => builder.family(f).replication(c),
                    None => builder.baseline(),
                };
                let mut s = builder.build(comm);
                // Store R so every resize also exercises the sparse
                // redistribution path.
                if s.is_active() {
                    s.worker_mut().sddmm();
                }
                let mut losses = vec![s.stored_loss()];
                let mut ok = true;
                for p_new in [5, 4, 3] {
                    s.resize(p_new);
                    ok &= s.active_p() == p_new && s.is_active() == (comm.rank() < p_new);
                    losses.push(s.stored_loss());
                }
                // The shrunk session must still compute: one fused call
                // on the survivors.
                let finite = if s.is_active() {
                    let y = s.fused_mm_b(None, Sampling::Values);
                    y.as_slice().iter().all(|v| v.is_finite())
                } else {
                    true
                };
                (losses, ok, finite)
            });
            assert_eq!(out.len(), WORLD, "{backend:?} {family:?}");
            for o in &out {
                let (losses, ok, finite) = &o.value;
                assert!(
                    losses[0] > 0.0,
                    "{backend:?} {family:?}: loss must be nonzero"
                );
                for (i, w) in losses.windows(2).enumerate() {
                    assert!(
                        continuous(w[0], w[1]),
                        "{backend:?} {family:?} rank {} boundary {i}: {} -> {}",
                        o.rank,
                        w[0],
                        w[1]
                    );
                }
                assert!(
                    ok,
                    "{backend:?} {family:?} rank {}: roster bookkeeping",
                    o.rank
                );
                assert!(finite, "{backend:?} {family:?} rank {}", o.rank);
            }
        }
    }
}

/// Growing must activate spares with real state: after `resize(6)` the
/// former spares hold iterate rows, and the global iterate mass
/// (Frobenius²) is unchanged by the move.
#[test]
fn grow_activates_spares_with_exact_iterate_mass() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(48, 48, 6, 4, 9502));
    let world = SimWorld::new(WORLD, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&prob))
            .active_ranks(4)
            .build(comm);
        let mass = |s: &Session| {
            let local: f64 = if s.is_active() {
                s.a_iterate().as_slice().iter().map(|v| v * v).sum()
            } else {
                0.0
            };
            s.world().allreduce_scalar(local)
        };
        let was_spare = !s.is_active();
        let before = mass(&s);
        s.resize(6);
        let rows_here = s.a_iterate().nrows();
        (was_spare, before, mass(&s), rows_here)
    });
    let spares: Vec<_> = out.iter().filter(|o| o.value.0).collect();
    assert_eq!(spares.len(), 2, "ranks 4 and 5 start as spares");
    for o in &out {
        let (_, before, after, rows) = o.value;
        assert!(
            continuous(before, after),
            "rank {}: iterate mass {before} -> {after}",
            o.rank
        );
        assert!(
            rows > 0,
            "rank {} must hold iterate rows after grow",
            o.rank
        );
    }
}

/// Redistribution traffic is owner-targeted: the words charged to
/// `Phase::Resize` stay `O(c·nnz + (m+n)·r)` — triplets travel only to
/// the ranks whose new pattern bounds contain them, never through an
/// all-gather — and the accounting is identical on the in-memory wire
/// backend (backend invariance).
#[test]
fn resize_traffic_is_owner_targeted_and_backend_invariant() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(48, 48, 6, 4, 9503));
    let (m, n, r) = (48usize, 48usize, 6usize);
    let nnz = prob.nnz();
    let mut per_backend = Vec::new();
    for backend in [BackendKind::InProc, BackendKind::Wire] {
        let pr = Arc::clone(&prob);
        let world = SimWorld::new(WORLD, MachineModel::bandwidth_only()).backend(backend);
        let out = world.run(move |comm| {
            let mut s = Session::builder_arc(Arc::clone(&pr))
                .active_ranks(4)
                .max_replication(4)
                .build(comm);
            if s.is_active() {
                s.worker_mut().sddmm();
            }
            let before = s.stats().phase(Phase::Resize).words_sent;
            let plan = s.resize(5);
            (s.stats().phase(Phase::Resize).words_sent - before, plan.c)
        });
        let total: u64 = out.iter().map(|o| o.value.0).sum();
        let c_new = out[0].value.1.max(1);
        // Triplets are ≤ 3 words each and land on at most c_new
        // replicas; the two dense iterates move at most (m+n)·r words;
        // the plan broadcast and observation all-reduce are O(p) small
        // frames. Generous constant, but strictly below any
        // allgather-shaped O(p·nnz) blowup.
        let bound = (3 * c_new * nnz + 2 * (m + n) * r + 64 * WORLD) as u64;
        assert!(
            total <= bound,
            "{backend:?}: resize moved {total} words, bound {bound}"
        );
        assert!(total > 0, "{backend:?}: resize must move state");
        per_backend.push(total);
    }
    assert_eq!(
        per_backend[0], per_backend[1],
        "word accounting must be backend-invariant"
    );
}

/// Shrinking retires the highest ranks: they keep answering world
/// collectives (loss) but panic on kernel calls, and a later grow
/// drafts them back in with continuous loss.
#[test]
fn shrink_then_regrow_round_trips_spare_state() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(48, 48, 6, 4, 9504));
    let world = SimWorld::new(4, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&prob)).build(comm);
        s.worker_mut().sddmm();
        let l0 = s.stored_loss();
        s.resize(3);
        let retired = !s.is_active();
        let l1 = s.stored_loss();
        s.resize(4);
        let l2 = s.stored_loss();
        // Everyone is active again and computes.
        let y = s.fused_mm_b(None, Sampling::Values);
        (
            l0,
            l1,
            l2,
            retired,
            y.as_slice().iter().all(|v| v.is_finite()),
        )
    });
    assert_eq!(
        out.iter().filter(|o| o.value.3).count(),
        1,
        "rank 3 retires"
    );
    for o in &out {
        let (l0, l1, l2, _, finite) = o.value;
        assert!(continuous(l0, l1), "shrink boundary: {l0} -> {l1}");
        assert!(continuous(l1, l2), "grow boundary: {l1} -> {l2}");
        assert!(finite);
    }
}

/// A resize lands in `Phase::Resize` only — the migration bucket (a
/// family change at fixed `p`) stays untouched, so bench breakdowns
/// keep the two stories separate.
#[test]
fn resize_traffic_never_leaks_into_migration_bucket() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(48, 48, 6, 4, 9505));
    let world = SimWorld::new(WORLD, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&prob))
            .active_ranks(4)
            .build(comm);
        if s.is_active() {
            s.worker_mut().sddmm();
        }
        let mig_before = s.stats().phase(Phase::Migration).words_sent;
        s.resize(6);
        (
            s.stats().phase(Phase::Migration).words_sent - mig_before,
            s.stats().phase(Phase::Resize).words_sent,
        )
    });
    for o in &out {
        assert_eq!(o.value.0, 0, "rank {}: migration bucket leaked", o.rank);
    }
    assert!(
        out.iter().map(|o| o.value.1).sum::<u64>() > 0,
        "resize words must be accounted"
    );
}
