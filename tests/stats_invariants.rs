//! Integration: accounting invariants of the simulated runtime that
//! every experiment relies on.

use std::sync::Arc;

use distributed_sparse_kernels::comm::{MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::theory::Algorithm;
use distributed_sparse_kernels::core::worker::DistWorker;
use distributed_sparse_kernels::core::{GlobalProblem, Sampling};

#[test]
fn global_sends_equal_global_receives() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9001));
    for alg in Algorithm::all_benchmarked() {
        let prob2 = Arc::clone(&prob);
        let world = SimWorld::new(8, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut w = DistWorker::from_global(comm, alg.family, 2, &prob2);
            let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
        });
        let (mut sent, mut recvd, mut msent, mut mrecvd) = (0u64, 0u64, 0u64, 0u64);
        for o in &out {
            let t = o.stats.total();
            sent += t.words_sent;
            recvd += t.words_recv;
            msent += t.msgs_sent;
            mrecvd += t.msgs_recv;
        }
        assert_eq!(sent, recvd, "{}", alg.label());
        assert_eq!(msent, mrecvd, "{}", alg.label());
        assert!(sent > 0, "{} must communicate at p=8", alg.label());
    }
}

#[test]
fn single_rank_sends_nothing() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(16, 16, 4, 3, 9002));
    for alg in Algorithm::all_benchmarked() {
        if !alg.family.valid_c(1, 1) {
            continue;
        }
        let prob2 = Arc::clone(&prob);
        let world = SimWorld::new(1, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut w = DistWorker::from_global(comm, alg.family, 1, &prob2);
            let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
        });
        assert_eq!(out[0].stats.total().words_sent, 0, "{}", alg.label());
        assert!(out[0].stats.phase(Phase::Computation).flops > 0);
    }
}

#[test]
fn setup_phase_is_never_charged() {
    // Staging (partitioning, scattering) must not leak into measured
    // phases: a worker that is built but never run reports zero.
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9003));
    let world = SimWorld::new(8, MachineModel::cori_knl());
    let out = world.run(move |comm| {
        use distributed_sparse_kernels::core::AlgorithmFamily;
        let _w = DistWorker::from_global(comm, AlgorithmFamily::DenseShift15, 2, &prob);
    });
    for o in &out {
        let t = o.stats.total(); // total() excludes Setup
        assert_eq!(t.words_sent, 0);
        assert_eq!(t.flops, 0);
        assert_eq!(t.modeled_s, 0.0);
    }
}

#[test]
fn flop_totals_match_kernel_arithmetic() {
    // FusedMM (no elision) = SDDMM + SpMM: 2nnz·r + nnz + 2nnz·r flops
    // in total across ranks, exactly as counted by the kernels crate.
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9004));
    let nnz = prob.nnz();
    let r = prob.dims.r;
    use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
    let alg = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::None);
    let world = SimWorld::new(8, MachineModel::cori_knl());
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, 2, &prob);
        let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
    });
    let flops: u64 = out.iter().map(|o| o.stats.total().flops).sum();
    let expect = dsk_expected_fused_flops(nnz, r);
    assert_eq!(flops, expect);
}

fn dsk_expected_fused_flops(nnz: usize, r: usize) -> u64 {
    // sddmm: 2·nnz·r + nnz (sampling multiply); spmm: 2·nnz·r.
    (2 * nnz * r + nnz + 2 * nnz * r) as u64
}

#[test]
fn modeled_time_is_alpha_beta_consistent() {
    // With α = 0 and β = 1, modeled comm time of a pairwise exchange
    // equals max(words in, words out) summed over steps; a world-wide
    // sanity check through a real algorithm.
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9005));
    use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
    let alg = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::ReplicationReuse);
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, 2, &prob);
        let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
    });
    for o in &out {
        // All traffic here is symmetric pairwise exchange, so each
        // rank's modeled seconds equal its words sent.
        let words = o.stats.phase(Phase::Propagation).words_sent as f64
            + o.stats.phase(Phase::Replication).words_sent as f64;
        let modeled = o.stats.modeled_comm_s();
        assert!(
            (modeled - words).abs() < 1e-9 * words.max(1.0),
            "rank {}: modeled {modeled} vs words {words}",
            o.rank
        );
    }
}

#[test]
fn watchdog_catches_mismatched_protocols() {
    // A rank that receives a message nobody sent must fail loudly, not
    // hang (failure-injection requirement from DESIGN.md).
    let world = SimWorld::new(2, MachineModel::cori_knl())
        .with_recv_timeout(std::time::Duration::from_millis(100));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = world.run(|comm| {
            if comm.rank() == 0 {
                let _: Vec<f64> = comm.recv(1, 42); // never sent
            }
        });
    }));
    assert!(result.is_err(), "mismatched receive must panic");
}
