//! Integration: accounting invariants of the simulated runtime that
//! every experiment relies on.

use std::sync::Arc;

use distributed_sparse_kernels::comm::{MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::theory::Algorithm;
use distributed_sparse_kernels::core::worker::DistWorker;
use distributed_sparse_kernels::core::{GlobalProblem, Sampling};

#[test]
fn global_sends_equal_global_receives() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9001));
    for alg in Algorithm::all_benchmarked() {
        let prob2 = Arc::clone(&prob);
        let world = SimWorld::new(8, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut w = DistWorker::from_global(comm, alg.family, 2, &prob2);
            let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
        });
        let (mut sent, mut recvd, mut msent, mut mrecvd) = (0u64, 0u64, 0u64, 0u64);
        for o in &out {
            let t = o.stats.total();
            sent += t.words_sent;
            recvd += t.words_recv;
            msent += t.msgs_sent;
            mrecvd += t.msgs_recv;
        }
        assert_eq!(sent, recvd, "{}", alg.label());
        assert_eq!(msent, mrecvd, "{}", alg.label());
        assert!(sent > 0, "{} must communicate at p=8", alg.label());
    }
}

#[test]
fn single_rank_sends_nothing() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(16, 16, 4, 3, 9002));
    for alg in Algorithm::all_benchmarked() {
        if !alg.family.valid_c(1, 1) {
            continue;
        }
        let prob2 = Arc::clone(&prob);
        let world = SimWorld::new(1, MachineModel::cori_knl());
        let out = world.run(move |comm| {
            let mut w = DistWorker::from_global(comm, alg.family, 1, &prob2);
            let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
        });
        assert_eq!(out[0].stats.total().words_sent, 0, "{}", alg.label());
        assert!(out[0].stats.phase(Phase::Computation).flops > 0);
    }
}

#[test]
fn setup_phase_is_never_charged() {
    // Staging (partitioning, scattering) must not leak into measured
    // phases: a worker that is built but never run reports zero.
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9003));
    let world = SimWorld::new(8, MachineModel::cori_knl());
    let out = world.run(move |comm| {
        use distributed_sparse_kernels::core::AlgorithmFamily;
        let _w = DistWorker::from_global(comm, AlgorithmFamily::DenseShift15, 2, &prob);
    });
    for o in &out {
        let t = o.stats.total(); // total() excludes Setup
        assert_eq!(t.words_sent, 0);
        assert_eq!(t.flops, 0);
        assert_eq!(t.modeled_s, 0.0);
    }
}

#[test]
fn flop_totals_match_kernel_arithmetic() {
    // FusedMM (no elision) = SDDMM + SpMM: 2nnz·r + nnz + 2nnz·r flops
    // in total across ranks, exactly as counted by the kernels crate.
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9004));
    let nnz = prob.nnz();
    let r = prob.dims.r;
    use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
    let alg = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::None);
    let world = SimWorld::new(8, MachineModel::cori_knl());
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, 2, &prob);
        let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
    });
    let flops: u64 = out.iter().map(|o| o.stats.total().flops).sum();
    let expect = dsk_expected_fused_flops(nnz, r);
    assert_eq!(flops, expect);
}

fn dsk_expected_fused_flops(nnz: usize, r: usize) -> u64 {
    // sddmm: 2·nnz·r + nnz (sampling multiply); spmm: 2·nnz·r.
    (2 * nnz * r + nnz + 2 * nnz * r) as u64
}

#[test]
fn modeled_time_is_alpha_beta_consistent() {
    // With α = 0 and β = 1, modeled comm time of a pairwise exchange
    // equals max(words in, words out) summed over steps; a world-wide
    // sanity check through a real algorithm.
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9005));
    use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
    let alg = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::ReplicationReuse);
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, 2, &prob);
        let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
    });
    for o in &out {
        // All traffic here is symmetric pairwise exchange, so each
        // rank's modeled seconds equal its words sent.
        let words = o.stats.phase(Phase::Propagation).words_sent as f64
            + o.stats.phase(Phase::Replication).words_sent as f64;
        let modeled = o.stats.modeled_comm_s();
        assert!(
            (modeled - words).abs() < 1e-9 * words.max(1.0),
            "rank {}: modeled {modeled} vs words {words}",
            o.rank
        );
    }
}

#[test]
fn stall_is_measured_only_and_never_enters_modeled_time() {
    // stall_s is an overlap diagnostic read off the wall clock; modeled
    // time is a function of the words alone. A sender that shows up
    // 25 ms late must move the stall bucket and nothing else.
    let run = |delay_ms: u64| {
        let world = SimWorld::new(2, MachineModel::bandwidth_only());
        world.run(move |comm| {
            comm.set_phase(Phase::Propagation);
            if comm.rank() == 0 {
                let h = comm.recv_begin::<Vec<f64>>(1, 11);
                let _ = h.wait();
            } else {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                comm.send(0, 11, vec![1.0f64; 64]);
            }
        })
    };
    let fast = run(0);
    let slow = run(25);
    let (f, s) = (
        fast[0].stats.phase(Phase::Propagation),
        slow[0].stats.phase(Phase::Propagation),
    );
    assert!(
        s.stall_s >= 0.01,
        "a 25 ms late sender must surface as measured stall, got {}",
        s.stall_s
    );
    assert!(f.modeled_s > 0.0, "the receive itself carries modeled cost");
    assert_eq!(
        f.modeled_s.to_bits(),
        s.modeled_s.to_bits(),
        "stall must never leak into modeled time"
    );
    assert_eq!(f.words_recv, s.words_recv);
}

#[test]
fn local_tuning_bucket_carries_no_traffic_and_no_modeled_cost() {
    // Every worker build microbenchmarks local variants under
    // Phase::LocalTuning; the tuner is documented communication-free
    // and records no modeled flops — only wall time may land there.
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9006));
    let world = SimWorld::new(8, MachineModel::cori_knl());
    let out = world.run(move |comm| {
        use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
        let mut w = DistWorker::from_global(comm, AlgorithmFamily::DenseShift15, 2, &prob);
        let _ = w.fused_mm_b(None, Elision::ReplicationReuse, Sampling::Values);
    });
    for o in &out {
        let t = o.stats.phase(Phase::LocalTuning);
        assert_eq!(t.words_sent, 0, "tuning must not communicate");
        assert_eq!(t.words_recv, 0);
        assert_eq!(t.msgs_sent, 0);
        assert_eq!(t.flops, 0, "tuning microbenches record no modeled flops");
        assert_eq!(t.modeled_s, 0.0);
        let s = o.stats.phase(Phase::Setup);
        assert_eq!(s.flops, 0, "staging records no modeled flops");
        assert_eq!(s.modeled_s, 0.0, "setup is never modeled");
    }
}

#[test]
fn resize_traffic_lands_in_the_resize_bucket_only() {
    // A pure capacity resize redistributes through Phase::Resize;
    // Phase::Migration keeps meaning same-p kernel migrations and must
    // stay zero.
    use distributed_sparse_kernels::core::session::Session;
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9007));
    let world = SimWorld::new(6, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut s = Session::builder_arc(Arc::clone(&prob))
            .baseline()
            .active_ranks(4)
            .build(comm);
        if s.is_active() {
            s.worker_mut().sddmm();
        }
        s.resize(6);
        s.stats()
    });
    let resize_words: u64 = out
        .iter()
        .map(|o| o.value.phase(Phase::Resize).words_sent)
        .sum();
    let migration_words: u64 = out
        .iter()
        .map(|o| o.value.phase(Phase::Migration).words_sent)
        .sum();
    assert!(resize_words > 0, "growing 4→6 must move rows over the wire");
    assert_eq!(migration_words, 0, "a pure resize is not a migration");
}

#[test]
fn watchdog_catches_mismatched_protocols() {
    // A rank that receives a message nobody sent must fail loudly, not
    // hang (failure-injection requirement from DESIGN.md).
    let world = SimWorld::new(2, MachineModel::cori_knl())
        .with_recv_timeout(std::time::Duration::from_millis(100));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = world.run(|comm| {
            if comm.rank() == 0 {
                let _: Vec<f64> = comm.recv(1, 42); // never sent
            }
        });
    }));
    assert!(result.is_err(), "mismatched receive must panic");
}
