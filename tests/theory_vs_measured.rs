//! Integration: measured communication matches the paper's Table III
//! analysis — the repository's strongest end-to-end check. Message
//! counts must match exactly; word counts within a small load-imbalance
//! tolerance (sparse-block sizes fluctuate around nnz/p).

use std::sync::Arc;

use distributed_sparse_kernels::comm::{AggregateStats, MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::theory::{self, Algorithm};
use distributed_sparse_kernels::core::worker::DistWorker;
use distributed_sparse_kernels::core::{GlobalProblem, Sampling};

fn measure(prob: &Arc<GlobalProblem>, p: usize, alg: Algorithm, c: usize) -> (f64, f64) {
    let prob2 = Arc::clone(prob);
    let world = SimWorld::new(p, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, c, &prob2);
        let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
    });
    let stats: Vec<_> = out.into_iter().map(|o| o.stats).collect();
    let agg = AggregateStats::from_ranks(&stats);
    let words = (agg.max_words(Phase::Replication) + agg.max_words(Phase::Propagation)) as f64;
    let msgs = (agg.max_msgs_sent[Phase::Replication.index()]
        + agg.max_msgs_sent[Phase::Propagation.index()]) as f64;
    (words, msgs)
}

#[test]
fn words_and_messages_match_table3() {
    let n = 1 << 10;
    let prob = Arc::new(GlobalProblem::erdos_renyi(n, n, 16, 8, 8001));
    let nnz = prob.nnz();
    let dims = prob.dims;
    for alg in Algorithm::all_benchmarked() {
        for (p, c) in [(16usize, 2usize), (16, 4)] {
            if !alg.family.valid_c(p, c) {
                continue;
            }
            let (words, msgs) = measure(&prob, p, alg, c);
            let words_model = theory::words_per_processor(alg, p, c, dims, nnz);
            let msgs_model = theory::messages_per_processor(alg, p, c);
            assert_eq!(
                msgs,
                msgs_model,
                "message count mismatch for {} p={p} c={c}",
                alg.label()
            );
            let ratio = words / words_model;
            assert!(
                (0.93..=1.07).contains(&ratio),
                "word count off Table III for {} p={p} c={c}: measured {words}, \
                 model {words_model} (ratio {ratio:.3})",
                alg.label()
            );
        }
    }
}

#[test]
fn elision_savings_match_theory_ratios() {
    // At the respective optimal replication factors, reuse and LKF must
    // save communication relative to no elision by the ratio theory
    // predicts for this p (→ 1/√2 as p → ∞).
    let n = 1 << 11;
    let p = 64usize;
    let prob = Arc::new(GlobalProblem::erdos_renyi(n, n, 16, 8, 8002));
    let nnz = prob.nnz();
    let dims = prob.dims;
    use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
    let mut meas = Vec::new();
    let mut model = Vec::new();
    for elision in [
        Elision::None,
        Elision::ReplicationReuse,
        Elision::LocalKernelFusion,
    ] {
        let alg = Algorithm::new(AlgorithmFamily::DenseShift15, elision);
        let c = theory::optimal_c_search(alg, p, dims, nnz, 16).unwrap();
        let (words, _) = measure(&prob, p, alg, c);
        meas.push(words);
        model.push(theory::words_per_processor(alg, p, c, dims, nnz));
    }
    for k in 1..3 {
        let meas_ratio = meas[k] / meas[0];
        let model_ratio = model[k] / model[0];
        assert!(
            (meas_ratio - model_ratio).abs() < 0.02,
            "elision saving mismatch: measured {meas_ratio:.3} vs model {model_ratio:.3}"
        );
        assert!(meas_ratio < 0.85, "elision must save communication");
    }
}

#[test]
fn sparse_shift_traffic_scales_with_nnz_not_nr() {
    // Doubling r leaves 1.5D sparse-shift propagation unchanged;
    // doubling nnz doubles it.
    use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
    let alg = Algorithm::new(AlgorithmFamily::SparseShift15, Elision::ReplicationReuse);
    let n = 1 << 10;
    let base = Arc::new(GlobalProblem::erdos_renyi(n, n, 8, 4, 8003));
    let wide = Arc::new(GlobalProblem::erdos_renyi(n, n, 16, 4, 8003));
    let dense = Arc::new(GlobalProblem::erdos_renyi(n, n, 8, 8, 8003));
    let prop = |prob: &Arc<GlobalProblem>| {
        let prob2 = Arc::clone(prob);
        let world = SimWorld::new(8, MachineModel::bandwidth_only());
        let out = world.run(move |comm| {
            let mut w = DistWorker::from_global(comm, alg.family, 2, &prob2);
            let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
        });
        out.iter()
            .map(|o| o.stats.phase(Phase::Propagation).words_sent)
            .sum::<u64>()
    };
    let (b, w, d) = (prop(&base), prop(&wide), prop(&dense));
    assert_eq!(b, w, "sparse-shift propagation must not depend on r");
    assert_eq!(2 * b, d, "sparse-shift propagation must scale with nnz");
}
