//! Integration: measured communication matches the paper's Table III
//! analysis — the repository's strongest end-to-end check. Message
//! counts must match exactly; word counts within a small load-imbalance
//! tolerance (sparse-block sizes fluctuate around nnz/p). Where the
//! check needs "the optimal configuration of algorithm X", it asks the
//! planner (`KernelBuilder::plan_candidates`) instead of re-deriving
//! `theory::` internals, so planner and theory cannot silently diverge.

use std::sync::Arc;

use distributed_sparse_kernels::comm::{AggregateStats, MachineModel, Phase, SimWorld};
use distributed_sparse_kernels::core::kernel::KernelBuilder;
use distributed_sparse_kernels::core::theory::{self, Algorithm};
use distributed_sparse_kernels::core::worker::DistWorker;
use distributed_sparse_kernels::core::{GlobalProblem, Sampling};

fn measure(prob: &Arc<GlobalProblem>, p: usize, alg: Algorithm, c: usize) -> (f64, f64) {
    let prob2 = Arc::clone(prob);
    let world = SimWorld::new(p, MachineModel::bandwidth_only());
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, c, &prob2);
        let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
    });
    let stats: Vec<_> = out.into_iter().map(|o| o.stats).collect();
    let agg = AggregateStats::from_ranks(&stats);
    let words = (agg.max_words(Phase::Replication) + agg.max_words(Phase::Propagation)) as f64;
    let msgs = (agg.max_msgs_sent[Phase::Replication.index()]
        + agg.max_msgs_sent[Phase::Propagation.index()]) as f64;
    (words, msgs)
}

#[test]
fn words_and_messages_match_table3() {
    let n = 1 << 10;
    let prob = Arc::new(GlobalProblem::erdos_renyi(n, n, 16, 8, 8001));
    let nnz = prob.nnz();
    let dims = prob.dims;
    for alg in Algorithm::all_benchmarked() {
        for (p, c) in [(16usize, 2usize), (16, 4)] {
            if !alg.family.valid_c(p, c) {
                continue;
            }
            let (words, msgs) = measure(&prob, p, alg, c);
            let words_model = theory::words_per_processor(alg, p, c, dims, nnz);
            let msgs_model = theory::messages_per_processor(alg, p, c);
            assert_eq!(
                msgs,
                msgs_model,
                "message count mismatch for {} p={p} c={c}",
                alg.label()
            );
            let ratio = words / words_model;
            assert!(
                (0.93..=1.07).contains(&ratio),
                "word count off Table III for {} p={p} c={c}: measured {words}, \
                 model {words_model} (ratio {ratio:.3})",
                alg.label()
            );
        }
    }
}

#[test]
fn elision_savings_match_theory_ratios() {
    // At the respective optimal replication factors, reuse and LKF must
    // save communication relative to no elision by the ratio theory
    // predicts for this p (→ 1/√2 as p → ∞).
    let n = 1 << 11;
    let p = 64usize;
    let prob = Arc::new(GlobalProblem::erdos_renyi(n, n, 16, 8, 8002));
    use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
    let mut meas = Vec::new();
    let mut model = Vec::new();
    for elision in [
        Elision::None,
        Elision::ReplicationReuse,
        Elision::LocalKernelFusion,
    ] {
        // Ask the planner for the optimal configuration of this exact
        // algorithm; its scoreboard carries the modeled word count.
        // Dense-routed: the measured side runs the paper's schedules.
        let cands = KernelBuilder::from_arc(Arc::clone(&prob))
            .family(AlgorithmFamily::DenseShift15)
            .elision(elision)
            .routing(distributed_sparse_kernels::core::Routing::Dense)
            .plan_candidates(p);
        assert_eq!(cands.len(), 1, "pinned family+elision resolves uniquely");
        let alg = cands[0].algorithm;
        assert_eq!(alg.elision, elision);
        let (words, _) = measure(&prob, p, alg, cands[0].c);
        meas.push(words);
        model.push(cands[0].words_per_proc);
    }
    for k in 1..3 {
        let meas_ratio = meas[k] / meas[0];
        let model_ratio = model[k] / model[0];
        assert!(
            (meas_ratio - model_ratio).abs() < 0.02,
            "elision saving mismatch: measured {meas_ratio:.3} vs model {model_ratio:.3}"
        );
        assert!(meas_ratio < 0.85, "elision must save communication");
    }
}

/// Closing the planner loop: run *every* scored candidate and check the
/// planner's pick against the measured (modeled-from-counts) winner.
/// The pick must be within a small regret of the best — the Figure 6
/// claim ("the prediction matches observation almost everywhere") as an
/// executable assertion.
#[test]
fn planner_pick_has_small_measured_regret() {
    let model = MachineModel::cori_knl();
    // Shapes straddling the φ crossover, exercising both 1.5D sides.
    let cases = [
        (1usize << 10, 8usize, 8usize, 16usize), // high φ
        (1 << 10, 16, 2, 16),                    // low φ
        (1 << 10, 32, 8, 8),                     // middle
    ];
    for (n, r, nnz_row, p) in cases {
        let prob = Arc::new(GlobalProblem::erdos_renyi(n, n, r, nnz_row, 8004));
        let cands = KernelBuilder::from_arc(Arc::clone(&prob))
            .model(model)
            .plan_candidates(p);
        assert!(cands.len() >= 4, "n={n} r={r}: sweep must have depth");
        let measured: Vec<f64> = cands
            .iter()
            .map(|cand| {
                let prob2 = Arc::clone(&prob);
                let alg = cand.algorithm;
                let c = cand.c;
                let routing = cand.routing;
                let world = SimWorld::new(p, model);
                let out = world.run(move |comm| {
                    let mut w = KernelBuilder::from_arc(Arc::clone(&prob2))
                        .algorithm(alg)
                        .replication(c)
                        .routing(routing)
                        .build(comm);
                    let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
                });
                let stats: Vec<_> = out.into_iter().map(|o| o.stats).collect();
                let agg = AggregateStats::from_ranks(&stats);
                agg.modeled_total_s()
            })
            .collect();
        let best = measured.iter().cloned().fold(f64::INFINITY, f64::min);
        let regret = measured[0] / best;
        assert!(
            regret <= 1.10,
            "n={n} r={r} nnz/row={nnz_row} p={p}: planner pick {:?} has measured regret \
             {regret:.3} (measured {measured:?})",
            cands[0].algorithm
        );
    }
}

#[test]
fn sparse_shift_traffic_scales_with_nnz_not_nr() {
    // Doubling r leaves 1.5D sparse-shift propagation unchanged;
    // doubling nnz doubles it.
    use distributed_sparse_kernels::core::{AlgorithmFamily, Elision};
    let alg = Algorithm::new(AlgorithmFamily::SparseShift15, Elision::ReplicationReuse);
    let n = 1 << 10;
    let base = Arc::new(GlobalProblem::erdos_renyi(n, n, 8, 4, 8003));
    let wide = Arc::new(GlobalProblem::erdos_renyi(n, n, 16, 4, 8003));
    let dense = Arc::new(GlobalProblem::erdos_renyi(n, n, 8, 8, 8003));
    let prop = |prob: &Arc<GlobalProblem>| {
        let prob2 = Arc::clone(prob);
        let world = SimWorld::new(8, MachineModel::bandwidth_only());
        let out = world.run(move |comm| {
            let mut w = DistWorker::from_global(comm, alg.family, 2, &prob2);
            let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
        });
        out.iter()
            .map(|o| o.stats.phase(Phase::Propagation).words_sent)
            .sum::<u64>()
    };
    let (b, w, d) = (prop(&base), prop(&wide), prop(&dense));
    assert_eq!(b, w, "sparse-shift propagation must not depend on r");
    assert_eq!(2 * b, d, "sparse-shift propagation must scale with nnz");
}
