//! Integration: correctness invariants of the `dsk-trace` recorder —
//! spans nest, per-rank clocks are offset-aligned at the epoch sync
//! anchor, a mid-epoch rank death still flushes the survivors' buffers,
//! and (the load-bearing one) tracing never perturbs a modeled counter.
//!
//! Trace state is process-global (thread-local recorders drain into one
//! sink), so every test serializes on [`LOCK`] and resets the sink
//! before and after its runs.

use std::sync::{Arc, Mutex, MutexGuard};

use distributed_sparse_kernels::comm::launch::is_worker_process;
use distributed_sparse_kernels::comm::trace::{self, TraceEvent, TraceKind, SYNC_EVENT};
use distributed_sparse_kernels::comm::{BackendKind, MachineModel, Phase, RankStats, SimWorld};
use distributed_sparse_kernels::core::theory::Algorithm;
use distributed_sparse_kernels::core::worker::DistWorker;
use distributed_sparse_kernels::core::{AlgorithmFamily, Elision, GlobalProblem, Sampling};

/// Tests in this binary run on parallel threads but the trace sink is
/// process-global: serialize, tolerating a poisoned lock from an
/// unrelated assert failure.
static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn fused_epoch(world: &SimWorld, prob: &Arc<GlobalProblem>) -> Vec<RankStats> {
    let prob = Arc::clone(prob);
    let alg = Algorithm::new(AlgorithmFamily::DenseShift15, Elision::ReplicationReuse);
    let out = world.run(move |comm| {
        let mut w = DistWorker::from_global(comm, alg.family, 2, &prob);
        let _ = w.fused_mm_b(None, alg.elision, Sampling::Values);
    });
    out.into_iter().map(|o| o.stats).collect()
}

/// Per-rank phase spans partition the timeline: sorted by start, each
/// span ends before (or exactly when) the next begins.
#[test]
fn phase_spans_partition_each_rank_timeline() {
    let _g = serialized();
    trace::reset();
    trace::set_override(true);
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9101));
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let _ = fused_epoch(&world, &prob);
    let events = trace::snapshot();
    trace::set_override(false);
    trace::reset();
    if is_worker_process() {
        return;
    }
    assert!(!events.is_empty(), "an enabled trace must record events");
    for rank in 0..8u32 {
        let mut phases: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.rank == rank && e.kind == TraceKind::Phase)
            .collect();
        assert!(!phases.is_empty(), "rank {rank} must have phase spans");
        phases.sort_by_key(|e| e.ts_ns);
        for w in phases.windows(2) {
            assert!(
                w[0].end_ns() <= w[1].ts_ns,
                "rank {rank}: phase spans overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}

/// Point-to-point comm spans nest inside a single phase span of the
/// same rank, and that span carries the matching phase attribute.
#[test]
fn comm_spans_nest_inside_phase_spans() {
    let _g = serialized();
    trace::reset();
    trace::set_override(true);
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9102));
    let world = SimWorld::new(8, MachineModel::bandwidth_only());
    let _ = fused_epoch(&world, &prob);
    let events = trace::snapshot();
    trace::set_override(false);
    trace::reset();
    if is_worker_process() {
        return;
    }
    let comm_spans: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Comm && e.dur_ns > 0)
        .collect();
    assert!(
        !comm_spans.is_empty(),
        "the shift family must record comm wait spans"
    );
    for c in comm_spans {
        let parent = events.iter().find(|p| {
            p.rank == c.rank
                && p.kind == TraceKind::Phase
                && p.ts_ns <= c.ts_ns
                && c.end_ns() <= p.end_ns()
        });
        let parent = parent.unwrap_or_else(|| {
            panic!("comm span {c:?} must nest inside one phase span of its rank")
        });
        assert_eq!(
            parent.phase, c.phase,
            "the enclosing phase span must match the span's phase attribute"
        );
    }
}

/// After the gather re-anchors each rank's clock, every rank's
/// [`SYNC_EVENT`] mark sits at the same instant — the per-process
/// monotonic clocks are offset-aligned at the epoch rendezvous.
#[test]
fn sync_anchors_coincide_across_ranks() {
    let _g = serialized();
    trace::reset();
    trace::set_override(true);
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9103));
    let world = SimWorld::new(6, MachineModel::bandwidth_only());
    let _ = fused_epoch(&world, &prob);
    let events = trace::snapshot();
    trace::set_override(false);
    trace::reset();
    if is_worker_process() {
        return;
    }
    let syncs: Vec<&TraceEvent> = events.iter().filter(|e| e.name == SYNC_EVENT).collect();
    assert_eq!(syncs.len(), 6, "one sync anchor per rank");
    let ranks: Vec<u32> = syncs.iter().map(|e| e.rank).collect();
    for r in 0..6u32 {
        assert!(ranks.contains(&r), "rank {r} must emit a sync anchor");
    }
    let t0 = syncs[0].ts_ns;
    for s in &syncs {
        assert_eq!(
            s.ts_ns, t0,
            "rank {}'s sync anchor must coincide with rank {}'s",
            s.rank, syncs[0].rank
        );
    }
}

/// A mid-epoch rank death aborts the epoch with a typed error, but the
/// trace survives: the survivors' buffers are still flushed into the
/// sink (in-memory backends recover every rank's partial timeline; the
/// socket abort path flushes the launcher's own).
#[test]
fn rank_death_still_flushes_survivor_buffers() {
    let _g = serialized();
    trace::reset();
    trace::set_override(true);
    let backend = BackendKind::from_env();
    let world = SimWorld::new(4, MachineModel::bandwidth_only());
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = world.try_run(move |comm| {
        comm.set_phase(Phase::Propagation);
        let v = vec![1.0f64; 8];
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        let _: Vec<f64> = comm.sendrecv(next, prev, 7, v);
        if comm.rank() == 2 {
            if backend == BackendKind::Socket && is_worker_process() {
                std::process::exit(3);
            }
            panic!("simulated node failure");
        }
    });
    std::panic::set_hook(default_hook);
    let events = trace::snapshot();
    trace::set_override(false);
    trace::reset();
    if is_worker_process() {
        return;
    }
    let err = result.expect_err("the epoch must abort when a rank dies");
    assert_eq!(err.dead, vec![2]);
    assert!(
        events.iter().any(|e| e.rank == 0),
        "survivor rank 0's buffer must be flushed despite the abort"
    );
    assert!(
        events.iter().any(|e| e.name == "epoch.abort"),
        "the abort must leave an epoch.abort mark in the trace"
    );
    if backend != BackendKind::Socket {
        for rank in [0u32, 1, 3] {
            assert!(
                events
                    .iter()
                    .any(|e| e.rank == rank && e.kind == TraceKind::Comm),
                "survivor rank {rank}'s comm events must be recovered"
            );
        }
    }
}

/// The tentpole guarantee: tracing is modeled-cost-free. Every modeled
/// per-phase counter — words, messages, wire bytes, flops, and modeled
/// seconds down to the bit — is identical with tracing on and off.
/// Only the measured wall/stall clocks may differ.
#[test]
fn tracing_leaves_modeled_counters_byte_identical() {
    let _g = serialized();
    trace::reset();
    let prob = Arc::new(GlobalProblem::erdos_renyi(32, 32, 8, 4, 9104));
    let world = SimWorld::new(8, MachineModel::cori_knl());
    trace::set_override(false);
    let untraced = fused_epoch(&world, &prob);
    trace::set_override(true);
    let traced = fused_epoch(&world, &prob);
    let traced_events = trace::snapshot();
    trace::set_override(false);
    trace::reset();
    if is_worker_process() {
        return;
    }
    assert!(
        !traced_events.is_empty(),
        "the traced leg must actually have recorded events"
    );
    for (u, t) in untraced.iter().zip(&traced) {
        for p in Phase::ALL {
            let (a, b) = (u.phase(p), t.phase(p));
            assert_eq!(a.msgs_sent, b.msgs_sent, "{p:?} msgs_sent");
            assert_eq!(a.words_sent, b.words_sent, "{p:?} words_sent");
            assert_eq!(a.msgs_recv, b.msgs_recv, "{p:?} msgs_recv");
            assert_eq!(a.words_recv, b.words_recv, "{p:?} words_recv");
            assert_eq!(a.wire_bytes_sent, b.wire_bytes_sent, "{p:?} wire_bytes");
            assert_eq!(a.flops, b.flops, "{p:?} flops");
            assert_eq!(
                a.modeled_s.to_bits(),
                b.modeled_s.to_bits(),
                "{p:?} modeled_s must be byte-identical"
            );
        }
    }
}

/// With tracing disabled, nothing reaches the sink: the hooks are one
/// cached-flag branch and record no events.
#[test]
fn disabled_tracing_records_nothing() {
    let _g = serialized();
    trace::reset();
    trace::set_override(false);
    if std::env::var_os(trace::TRACE_ENV_VAR).is_some() {
        return; // the environment force-enables tracing; nothing to test
    }
    let prob = Arc::new(GlobalProblem::erdos_renyi(16, 16, 4, 3, 9105));
    let world = SimWorld::new(4, MachineModel::bandwidth_only());
    let _ = fused_epoch(&world, &prob);
    let events = trace::snapshot();
    trace::reset();
    if is_worker_process() {
        return;
    }
    assert!(events.is_empty(), "disabled tracing must record nothing");
}
