//! Trait-conformance suite: one parameterized scenario — SDDMM, then a
//! softmax-style R manipulation, then FusedMM, then gather — driven
//! through `dyn DistKernel` across all four algorithm families **and**
//! the 1D baseline, asserting cross-kernel agreement with the
//! shared-memory reference kernels.
//!
//! This is the contract the API redesign rests on: every kernel behind
//! the trait object must be interchangeable for application code.

use std::sync::Arc;

use distributed_sparse_kernels::kernels as kern;
use distributed_sparse_kernels::prelude::*;

/// Every kernel configuration the suite runs: the four families at a
/// valid (p = 8, c) plus the baseline.
fn scenarios(prob: &Arc<GlobalProblem>) -> Vec<(&'static str, KernelBuilder<'static>, Elision)> {
    vec![
        (
            "1.5D dense shift",
            KernelBuilder::from_arc(Arc::clone(prob))
                .family(AlgorithmFamily::DenseShift15)
                .replication(2),
            Elision::LocalKernelFusion,
        ),
        (
            "1.5D sparse shift",
            KernelBuilder::from_arc(Arc::clone(prob))
                .family(AlgorithmFamily::SparseShift15)
                .replication(2),
            Elision::ReplicationReuse,
        ),
        (
            "2.5D dense repl",
            KernelBuilder::from_arc(Arc::clone(prob))
                .family(AlgorithmFamily::DenseRepl25)
                .replication(2),
            Elision::ReplicationReuse,
        ),
        (
            "2.5D sparse repl",
            KernelBuilder::from_arc(Arc::clone(prob))
                .family(AlgorithmFamily::SparseRepl25)
                .replication(2),
            Elision::None,
        ),
        (
            "1D baseline",
            KernelBuilder::from_arc(Arc::clone(prob)).baseline(),
            Elision::None,
        ),
    ]
}

const P: usize = 8;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * b.abs().max(1.0)
}

/// SDDMM through the trait object: gathered R must equal the serial
/// reference for every kernel, on both the typed in-process backend and
/// the serialized wire backend (same program, byte-identical results —
/// the backends may differ in realization only).
#[test]
fn sddmm_gathers_identically_across_kernels_and_backends() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(26, 22, 7, 3, 4001));
    let expect = prob.reference_sddmm().to_coo().to_dense();
    for backend in BackendKind::conformance_with_env() {
        for (name, builder, _) in scenarios(&prob) {
            let expect = expect.clone();
            let world = SimWorld::new(P, MachineModel::bandwidth_only()).backend(backend);
            let out = world.run(move |comm| {
                let mut worker = builder.build(comm);
                let k: &mut dyn DistKernel = worker.kernel_mut();
                k.sddmm();
                k.gather_r(comm)
            });
            let got = out[0].value.as_ref().unwrap().to_dense();
            for (g, e) in got.iter().zip(&expect) {
                assert!(
                    (g - e).abs() < 1e-9,
                    "SDDMM mismatch for {name} on {}",
                    backend.label()
                );
            }
        }
    }
}

/// The full scenario: generalized SDDMM → map/row-sum/scale (the GAT
/// softmax plumbing) → R-valued SpMM → FusedMM — every step through
/// `dyn DistKernel`, fingerprinted against a serial computation.
#[test]
fn full_scenario_agrees_across_kernels() {
    let (m, n, r) = (24, 24, 6);
    let prob = Arc::new(GlobalProblem::erdos_renyi(m, n, r, 3, 4002));

    // Serial reference of the same pipeline.
    let (expect_conv_sq, expect_fused_sq) = {
        let s = prob.s_csr();
        // exp(dot) then row normalization, like a softmax.
        let mut vals = kern::reference::sddmm_ref(&s, &prob.a, &prob.b);
        for v in vals.iter_mut() {
            *v = (*v).exp();
        }
        let indptr = s.indptr();
        for i in 0..m {
            let sum: f64 = vals[indptr[i]..indptr[i + 1]].iter().sum();
            if sum > 0.0 {
                for v in &mut vals[indptr[i]..indptr[i + 1]] {
                    *v /= sum;
                }
            }
        }
        let mut alpha = s.clone();
        alpha.set_vals(vals);
        let mut conv = distributed_sparse_kernels::dense::Mat::zeros(m, r);
        kern::spmm_csr_acc(&mut conv, &alpha, &prob.b);
        let conv_sq: f64 = conv.as_slice().iter().map(|v| v * v).sum();
        let fused = prob.reference_fused_b();
        let fused_sq: f64 = fused.as_slice().iter().map(|v| v * v).sum();
        (conv_sq, fused_sq)
    };

    for (name, builder, elision) in scenarios(&prob) {
        let world = SimWorld::new(P, MachineModel::bandwidth_only());
        let out = world.run(move |comm| {
            let mut worker = builder.build(comm);
            let k: &mut dyn DistKernel = worker.kernel_mut();

            // Sampled SDDMM, then a softmax-style normalization over R
            // (exponentiate, row-sum with whatever reduction the
            // kernel's distribution needs, scale).
            k.sddmm();
            k.map_r(&mut |v| v.exp());
            let sums = k.r_row_sums(comm, Phase::OutsideComm);
            let inv: Vec<f64> = sums
                .iter()
                .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
                .collect();
            k.scale_r_rows(&inv);

            // Convolution with the normalized R against the B iterate.
            let hw = k.b_iterate();
            let conv = k.spmm_a_with(&hw);
            let conv_sq: f64 = conv.as_slice().iter().map(|v| v * v).sum();

            // FusedMM after the R manipulation (operands untouched).
            let fused = k.fused_mm_b(None, elision, Sampling::Values);
            let fused_sq: f64 = fused.as_slice().iter().map(|v| v * v).sum();
            (conv_sq, fused_sq)
        });
        let conv_sq: f64 = out.iter().map(|o| o.value.0).sum();
        let fused_sq: f64 = out.iter().map(|o| o.value.1).sum();
        assert!(
            close(conv_sq, expect_conv_sq),
            "{name}: convolution ‖·‖² {conv_sq} vs {expect_conv_sq}"
        );
        assert!(
            close(fused_sq, expect_fused_sq),
            "{name}: FusedMMB ‖·‖² {fused_sq} vs {expect_fused_sq}"
        );
    }
}

/// Regression for the R-valued SpMMB: `Rᵀ·A` must agree with the serial
/// reference for every kernel — most importantly the 1D baseline, whose
/// R values live in the `S` orientation and must be redistributed into
/// the `Sᵀ` orientation first (this used to be a documented panic).
/// Runs over both communication backends: the redistribution is
/// all-to-all heavy, exactly the traffic the wire path must encode.
#[test]
fn r_valued_spmm_b_agrees_across_kernels_and_backends() {
    let (m, n, r) = (24, 22, 5);
    let prob = Arc::new(GlobalProblem::erdos_renyi(m, n, r, 3, 4005));
    // Serial reference: R = SDDMM(A, B) sampled by S, then Rᵀ·A.
    let expect_sq: f64 = {
        let rt = prob.reference_sddmm().transpose();
        let mut out = distributed_sparse_kernels::dense::Mat::zeros(n, r);
        kern::spmm_csr_acc(&mut out, &rt, &prob.a);
        out.as_slice().iter().map(|v| v * v).sum()
    };
    for backend in BackendKind::conformance_with_env() {
        for (name, builder, _) in scenarios(&prob) {
            let world = SimWorld::new(P, MachineModel::bandwidth_only()).backend(backend);
            let out = world.run(move |comm| {
                let mut worker = builder.build(comm);
                let k: &mut dyn DistKernel = worker.kernel_mut();
                k.sddmm();
                let local = k.spmm_b(true);
                local.as_slice().iter().map(|v| v * v).sum::<f64>()
            });
            let got: f64 = out.iter().map(|o| o.value).sum();
            assert!(
                close(got, expect_sq),
                "{name} on {}: Rᵀ·A ‖·‖² {got} vs {expect_sq}",
                backend.label()
            );
        }
    }
}

/// The iterate surface: `a_iterate`/`set_a` round-trip and the declared
/// iterate layouts tile the global matrix exactly once, for every
/// kernel.
#[test]
fn iterate_layouts_tile_and_roundtrip() {
    let (m, n, r) = (25, 30, 5);
    let prob = Arc::new(GlobalProblem::erdos_renyi(m, n, r, 3, 4003));
    for (name, builder, _) in scenarios(&prob) {
        let world = SimWorld::new(P, MachineModel::bandwidth_only());
        let out = world.run(move |comm| {
            let mut worker = builder.build(comm);
            let k: &mut dyn DistKernel = worker.kernel_mut();
            // Layout descriptors must match the actual iterate shapes.
            let la = k.a_iterate_layout_of(comm.rank());
            let a = k.a_iterate();
            assert_eq!(a.nrows(), la.local_rows());
            assert_eq!(a.ncols(), la.width());
            // All ranks' A-iterate layouts tile m × r exactly once.
            let mut cells = 0usize;
            for g in 0..comm.size() {
                let l = k.a_iterate_layout_of(g);
                cells += l.local_rows() * l.width();
            }
            assert_eq!(cells, m * r, "A iterate layouts must tile A");
            // set/get round-trip.
            k.set_a(comm, &a);
            let a2 = k.a_iterate();
            distributed_sparse_kernels::dense::ops::max_abs_diff(&a, &a2)
        });
        for o in &out {
            assert!(o.value < 1e-12, "{name}: iterate round-trip changed data");
        }
    }
}

/// Live-migration round trip: build each of the five kernels, run one
/// fused iteration plus an SDDMM, then migrate the session to every
/// other admissible family — iterates, R values, and the squared loss
/// must survive identically (tolerance only for the float dust of a
/// different summation order), under all three communication backends.
///
/// This is the contract adaptive sessions rest on: a migration may
/// change the *distribution* of the application state, never its
/// *value*.
#[test]
fn migration_round_trips_state_across_all_kernels_and_backends() {
    use distributed_sparse_kernels::core::layout::gather_dense;
    use distributed_sparse_kernels::core::session::Session;
    use distributed_sparse_kernels::core::theory::Algorithm;

    let (m, n, r) = (24usize, 24usize, 6usize);
    let prob = Arc::new(GlobalProblem::erdos_renyi(m, n, r, 3, 4006));
    let sources: Vec<(&'static str, Option<AlgorithmFamily>)> = vec![
        ("1.5D dense shift", Some(AlgorithmFamily::DenseShift15)),
        ("1.5D sparse shift", Some(AlgorithmFamily::SparseShift15)),
        ("2.5D dense repl", Some(AlgorithmFamily::DenseRepl25)),
        ("2.5D sparse repl", Some(AlgorithmFamily::SparseRepl25)),
        ("1D baseline", None),
    ];
    let target_alg = |family: AlgorithmFamily| match family {
        AlgorithmFamily::SparseRepl25 => Algorithm::new(family, Elision::None),
        _ => Algorithm::new(family, Elision::ReplicationReuse),
    };
    // All three backends: delay injection changes timing, not
    // semantics, but migration is all-to-all heavy — exactly the
    // traffic the wire paths must encode and delay correctly.
    let mut backends = vec![
        BackendKind::InProc,
        BackendKind::Wire,
        BackendKind::WireDelay,
    ];
    // Plus the environment-selected backend (the socket CI leg runs
    // live migration across real process boundaries).
    let env = BackendKind::from_env();
    if !backends.contains(&env) {
        backends.push(env);
    }
    for backend in backends {
        for (src_name, src_family) in &sources {
            for dst in AlgorithmFamily::ALL {
                if *src_family == Some(dst) {
                    continue;
                }
                let pr = Arc::clone(&prob);
                let src_family = *src_family;
                // cori-like constants keep the wire-delay injected
                // sleeps at µs scale.
                let world = SimWorld::new(P, MachineModel::cori_knl()).backend(backend);
                let out = world.run(move |comm| {
                    let builder = Session::builder_arc(Arc::clone(&pr));
                    let builder = match src_family {
                        Some(f) => builder.family(f).replication(2),
                        None => builder.baseline(),
                    };
                    let mut s = builder.build(comm);
                    // One fused iteration, then a known R state.
                    let _ = s.fused_mm_b(None, Sampling::Values);
                    s.worker_mut().sddmm();

                    let snapshot = |s: &Session, comm: &Comm| {
                        let k = s.worker().kernel();
                        let a = gather_dense(
                            comm,
                            0,
                            &s.a_iterate(),
                            |g| k.a_iterate_layout_of(g),
                            m,
                            r,
                        );
                        let b = gather_dense(
                            comm,
                            0,
                            &s.b_iterate(),
                            |g| k.b_iterate_layout_of(g),
                            n,
                            r,
                        );
                        let rr = k.gather_r(comm).map(|c| c.to_dense());
                        (a, b, rr, s.stored_loss())
                    };
                    let before = snapshot(&s, comm);
                    s.migrate(target_alg(dst), 2);
                    assert_eq!(s.worker().family(), Some(dst));
                    let after = snapshot(&s, comm);
                    (before, after)
                });
                let (before, after) = &out[0].value;
                let close = |x: &Option<distributed_sparse_kernels::dense::Mat>,
                             y: &Option<distributed_sparse_kernels::dense::Mat>|
                 -> f64 {
                    distributed_sparse_kernels::dense::ops::max_abs_diff(
                        x.as_ref().unwrap(),
                        y.as_ref().unwrap(),
                    )
                };
                let ctx = format!("{src_name} → {dst:?} on {}", backend.label());
                assert!(close(&before.0, &after.0) < 1e-12, "{ctx}: A iterate moved");
                assert!(close(&before.1, &after.1) < 1e-12, "{ctx}: B iterate moved");
                let (r_before, r_after) = (before.2.as_ref().unwrap(), after.2.as_ref().unwrap());
                for (x, y) in r_before.iter().zip(r_after) {
                    assert!((x - y).abs() < 1e-12, "{ctx}: R values moved");
                }
                assert!(
                    (before.3 - after.3).abs() <= 1e-9 * before.3.abs().max(1.0),
                    "{ctx}: loss discontinuity {} vs {}",
                    before.3,
                    after.3
                );
            }
        }
    }
}

/// The PR's pipeline contract: pipelined and blocking shift execution
/// must be indistinguishable to the byte — identical output bits on
/// every rank and identical modeled counters — for every kernel, every
/// conformance backend, and both routings. Only wall/stall clocks may
/// differ: the pipeline changes *when* blocks move, never what arrives
/// or what is charged.
#[test]
fn pipelined_and_blocking_shifts_agree_bitwise() {
    use distributed_sparse_kernels::comm::RankStats;
    use distributed_sparse_kernels::core::ShiftMode;

    fn fingerprint(stats: &RankStats) -> Vec<(u64, u64, u64, u64, u64, u64, u64)> {
        Phase::ALL
            .iter()
            .map(|&ph| {
                let c = stats.phase(ph);
                (
                    c.msgs_sent,
                    c.words_sent,
                    c.msgs_recv,
                    c.words_recv,
                    c.wire_bytes_sent,
                    c.flops,
                    c.modeled_s.to_bits(),
                )
            })
            .collect()
    }

    let prob = Arc::new(GlobalProblem::erdos_renyi(24, 22, 5, 3, 4007));
    let staged = Arc::new(StagedProblem::new(Arc::clone(&prob)));
    // The local-kernel tuner picks by wall clock, and a different
    // variant reorders float summation — legitimate, but it would make
    // this bit-level comparison flaky. Pin the variant so the only
    // degree of freedom between the two runs is the shift mode.
    staged.local_tuning().set_pin(Some(
        distributed_sparse_kernels::kernels::LocalKernel::Naive,
    ));
    let configs: Vec<(&'static str, Option<AlgorithmFamily>, Elision)> = vec![
        (
            "1.5D dense shift",
            Some(AlgorithmFamily::DenseShift15),
            Elision::LocalKernelFusion,
        ),
        (
            "1.5D sparse shift",
            Some(AlgorithmFamily::SparseShift15),
            Elision::ReplicationReuse,
        ),
        (
            "2.5D dense repl",
            Some(AlgorithmFamily::DenseRepl25),
            Elision::ReplicationReuse,
        ),
        (
            "2.5D sparse repl",
            Some(AlgorithmFamily::SparseRepl25),
            Elision::None,
        ),
        ("1D baseline", None, Elision::None),
    ];
    for backend in BackendKind::conformance_with_env() {
        for routing in [Routing::Dense, Routing::Pattern] {
            for &(name, family, elision) in &configs {
                if family.is_none() && routing == Routing::Pattern {
                    // The baseline has no shift schedule to pattern-route.
                    continue;
                }
                let run = |mode: ShiftMode| {
                    let builder = match family {
                        Some(f) => KernelBuilder::from_staged(&staged).family(f).replication(2),
                        None => KernelBuilder::from_staged(&staged).baseline(),
                    }
                    .routing(routing);
                    let world = SimWorld::new(P, MachineModel::bandwidth_only()).backend(backend);
                    world.run(move |comm| {
                        let _g = ShiftMode::scoped(mode);
                        let mut worker = builder.build(comm);
                        let y = worker.fused_mm_b(None, elision, Sampling::Values);
                        y.as_slice()
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<u64>>()
                    })
                };
                let a = run(ShiftMode::Pipelined);
                let b = run(ShiftMode::Blocking);
                for (oa, ob) in a.iter().zip(&b) {
                    assert_eq!(
                        oa.value,
                        ob.value,
                        "{name} ({}) on {}: output bits diverged between shift modes",
                        routing.label(),
                        backend.label()
                    );
                    assert_eq!(
                        fingerprint(&oa.stats),
                        fingerprint(&ob.stats),
                        "{name} ({}) on {}: modeled counters diverged between shift modes",
                        routing.label(),
                        backend.label()
                    );
                }
            }
        }
    }
}

/// The declared elision support must match what `fused_mm_b` accepts.
#[test]
fn supports_reflects_fused_behavior() {
    let prob = Arc::new(GlobalProblem::erdos_renyi(24, 24, 4, 2, 4004));
    for (name, builder, _) in scenarios(&prob) {
        for elision in Elision::ALL {
            let world = SimWorld::new(P, MachineModel::bandwidth_only());
            let b = builder.clone();
            let out = world.run(move |comm| {
                let mut worker = b.build(comm);
                let supported = worker.supports(elision);
                // Unsupported elisions panic at kernel entry, before
                // any communication, so catching is rank-local.
                let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = worker.fused_mm_b(None, elision, Sampling::Values);
                }))
                .is_ok();
                supported == ran
            });
            assert!(
                out.iter().all(|o| o.value),
                "{name}: supports({elision:?}) disagrees with fused_mm_b"
            );
        }
    }
}
